#include "runtime/analysis/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <set>
#include <utility>

#include "comm/communicator.hpp"
#include "runtime/json.hpp"
#include "runtime/metrics.hpp"  // human_bytes (report formatting helpers)
#include "runtime/timeline.hpp"
#include "runtime/tracer.hpp"   // fold_scope_path

namespace keybin2::runtime {

namespace {

constexpr std::int64_t kNoTime = std::numeric_limits<std::int64_t>::min();

std::int64_t clamp64(std::int64_t v, std::int64_t lo, std::int64_t hi) {
  return std::max(lo, std::min(hi, v));
}

/// Deepest (shortest, by strict nesting) span of `tl` containing time t,
/// or nullptr when the rank was outside every traced scope.
const Timeline::Span* deepest_at(const Timeline& tl, std::int64_t t) {
  const Timeline::Span* best = nullptr;
  for (const auto& s : tl.spans()) {
    if (s.start_ns <= t && t < s.end_ns) {
      if (best == nullptr ||
          (s.end_ns - s.start_ns) < (best->end_ns - best->start_ns)) {
        best = &s;
      }
    }
  }
  return best;
}

std::string stage_at(const Timeline& tl, std::int64_t t) {
  const auto* s = deepest_at(tl, t);
  return s == nullptr ? std::string("(untraced)") : fold_scope_path(s->name);
}

/// A blocking event the backward walk can stop at: a recv that actually
/// waited, or a barrier. `t_ns` is when the block *ended* (progress
/// resumed); events are kept sorted by t_ns per rank.
struct Gate {
  std::int64_t t_ns = 0;
  std::int64_t wait_ns = 0;
  const Timeline::Flow* recv = nullptr;  // nullptr for barrier gates
  bool consumed = false;
};

struct FlowEnd {
  const Timeline::Flow* flow = nullptr;
  int rank_index = -1;
};

double pct(std::int64_t part, std::int64_t whole) {
  return whole <= 0 ? 0.0
                    : 100.0 * static_cast<double>(part) /
                          static_cast<double>(whole);
}

const char* kind_name(CriticalSegment::Kind k) {
  switch (k) {
    case CriticalSegment::Kind::kCompute: return "compute";
    case CriticalSegment::Kind::kComm: return "comm";
    case CriticalSegment::Kind::kWait: return "wait";
  }
  return "?";
}

}  // namespace

TraceAnalysis analyze(std::span<const Timeline> ranks) {
  TraceAnalysis out;
  out.ranks = static_cast<int>(ranks.size());
  if (ranks.empty()) return out;

  // ---- Global epoch / end and the rank that finishes last. ----
  std::int64_t epoch = std::numeric_limits<std::int64_t>::max();
  std::int64_t end = std::numeric_limits<std::int64_t>::min();
  int end_rank = 0;
  for (std::size_t r = 0; r < ranks.size(); ++r) {
    const auto& tl = ranks[r];
    std::int64_t rank_end = kNoTime;
    for (const auto& s : tl.spans()) {
      epoch = std::min(epoch, s.start_ns);
      rank_end = std::max(rank_end, s.end_ns);
    }
    for (const auto& f : tl.flows()) {
      epoch = std::min(epoch, f.t_ns - (f.start ? 0 : f.wait_ns));
      rank_end = std::max(rank_end, f.t_ns);
    }
    for (const auto& wt : tl.waits()) {
      epoch = std::min(epoch, wt.t_ns - wt.wait_ns);
      rank_end = std::max(rank_end, wt.t_ns);
    }
    for (const auto& i : tl.instants()) {
      epoch = std::min(epoch, i.t_ns);
      rank_end = std::max(rank_end, i.t_ns);
    }
    if (rank_end > end) {
      end = rank_end;
      end_rank = static_cast<int>(r);
    }
  }
  if (epoch == std::numeric_limits<std::int64_t>::max()) return out;
  out.epoch_ns = epoch;
  out.end_ns = end;
  out.wall_ns = end - epoch;

  // ---- Pair flows across ranks by id. ----
  std::map<std::uint64_t, FlowEnd> sends;
  for (std::size_t r = 0; r < ranks.size(); ++r) {
    for (const auto& f : ranks[r].flows()) {
      if (f.start) sends[f.id] = FlowEnd{&f, static_cast<int>(r)};
    }
  }

  // ---- Per-rank activity + caused-wait attribution (all recvs, not just
  // the ones the critical path visits). ----
  out.per_rank.resize(ranks.size());
  for (std::size_t r = 0; r < ranks.size(); ++r) {
    auto& activity = out.per_rank[r];
    activity.rank = ranks[r].rank();

    // Busy = union of span coverage (spans nest, so merging is cheap).
    std::vector<std::pair<std::int64_t, std::int64_t>> iv;
    for (const auto& s : ranks[r].spans()) iv.emplace_back(s.start_ns, s.end_ns);
    std::sort(iv.begin(), iv.end());
    std::int64_t cover_end = kNoTime;
    for (const auto& [a, b] : iv) {
      if (a >= cover_end) {
        activity.busy_ns += b - a;
        cover_end = b;
      } else if (b > cover_end) {
        activity.busy_ns += b - cover_end;
        cover_end = b;
      }
    }

    for (const auto& f : ranks[r].flows()) {
      if (f.start || f.wait_ns <= 0) continue;
      activity.wait_ns += f.wait_ns;
      const auto it = sends.find(f.id);
      if (it == sends.end()) continue;
      // Late-sender split: how much of this block elapsed before the
      // sender even issued the message.
      const std::int64_t t0 = f.t_ns - f.wait_ns;
      const std::int64_t caused =
          clamp64(std::min(it->second.flow->t_ns, f.t_ns) - t0, 0, f.wait_ns);
      out.per_rank[it->second.rank_index].caused_wait_ns += caused;
    }
    for (const auto& wt : ranks[r].waits()) activity.wait_ns += wt.wait_ns;
  }

  std::int64_t total_caused = 0;
  for (const auto& a : out.per_rank) total_caused += a.caused_wait_ns;
  for (const auto& a : out.per_rank) {
    if (a.caused_wait_ns > out.straggler_caused_wait_ns) {
      out.straggler_caused_wait_ns = a.caused_wait_ns;
      out.straggler_rank = a.rank;
    }
  }
  if (total_caused > 0) {
    out.straggler_share = static_cast<double>(out.straggler_caused_wait_ns) /
                          static_cast<double>(total_caused);
  }

  // ---- Stage table: per-rank self time per exact path, folded. ----
  struct StageAccum {
    int ranks = 0;
    std::int64_t total_ns = 0;
    std::int64_t max_ns = 0;
    int max_rank = -1;
    std::int64_t wait_ns = 0;
    std::int64_t critical_ns = 0;
  };
  std::map<std::string, StageAccum> stage_accum;
  for (std::size_t r = 0; r < ranks.size(); ++r) {
    std::map<std::string, std::int64_t> path_total;
    for (const auto& s : ranks[r].spans()) {
      path_total[s.name] += s.end_ns - s.start_ns;
    }
    // Self time = inclusive minus direct children (paths are call contexts:
    // "fit/trial0" is the unique parent of "fit/trial0/bin").
    std::map<std::string, std::int64_t> self = path_total;
    for (const auto& [path, total] : path_total) {
      const auto slash = path.rfind('/');
      if (slash == std::string::npos) continue;
      const auto parent = self.find(path.substr(0, slash));
      if (parent != self.end()) parent->second -= total;
    }
    std::map<std::string, std::int64_t> rank_stage;
    for (const auto& [path, self_ns] : self) {
      rank_stage[fold_scope_path(path)] += self_ns;
    }
    for (const auto& [stage, self_ns] : rank_stage) {
      auto& acc = stage_accum[stage];
      ++acc.ranks;
      acc.total_ns += self_ns;
      if (self_ns > acc.max_ns) {
        acc.max_ns = self_ns;
        acc.max_rank = ranks[r].rank();
      }
    }
    // Blocked time lands on the stage that was open when the block ended.
    for (const auto& f : ranks[r].flows()) {
      if (!f.start && f.wait_ns > 0) {
        stage_accum[stage_at(ranks[r], f.t_ns)].wait_ns += f.wait_ns;
      }
    }
    for (const auto& wt : ranks[r].waits()) {
      if (wt.wait_ns > 0) {
        stage_accum[stage_at(ranks[r], wt.t_ns)].wait_ns += wt.wait_ns;
      }
    }
  }

  // ---- Backward critical-path walk. ----
  // Gating events per rank index, sorted by block-end time.
  std::vector<std::vector<Gate>> gates(ranks.size());
  for (std::size_t r = 0; r < ranks.size(); ++r) {
    for (const auto& f : ranks[r].flows()) {
      if (!f.start && f.wait_ns > 0) {
        gates[r].push_back(Gate{f.t_ns, f.wait_ns, &f, false});
      }
    }
    for (const auto& wt : ranks[r].waits()) {
      if (wt.wait_ns > 0) {
        gates[r].push_back(Gate{wt.t_ns, wt.wait_ns, nullptr, false});
      }
    }
    std::sort(gates[r].begin(), gates[r].end(),
              [](const Gate& a, const Gate& b) { return a.t_ns < b.t_ns; });
  }

  // Emits the compute stretch [a, b] on rank `r`, split wherever the
  // deepest open scope changes so per-stage critical attribution is exact.
  auto emit_compute = [&](int r, std::int64_t a, std::int64_t b) {
    if (b <= a) return;
    const auto& tl = ranks[static_cast<std::size_t>(r)];
    std::vector<std::int64_t> cuts;
    cuts.push_back(a);
    for (const auto& s : tl.spans()) {
      if (s.start_ns > a && s.start_ns < b) cuts.push_back(s.start_ns);
      if (s.end_ns > a && s.end_ns < b) cuts.push_back(s.end_ns);
    }
    cuts.push_back(b);
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
    // The walk runs backward, so emit latest sub-interval first to keep the
    // whole path vector reverse-chronological until the final reverse.
    for (std::size_t i = cuts.size() - 1; i > 0; --i) {
      const std::int64_t lo = cuts[i - 1];
      const std::int64_t hi = cuts[i];
      const auto stage = stage_at(tl, lo + (hi - lo) / 2);
      stage_accum[stage].critical_ns += hi - lo;
      if (!out.critical_path.empty()) {
        auto& last = out.critical_path.back();
        if (last.kind == CriticalSegment::Kind::kCompute &&
            last.rank == tl.rank() && last.label == stage &&
            last.start_ns == hi) {
          last.start_ns = lo;  // coalesce same-stage neighbours
          continue;
        }
      }
      out.critical_path.push_back(CriticalSegment{
          CriticalSegment::Kind::kCompute, tl.rank(), stage, lo, hi});
    }
  };

  int cursor_rank = end_rank;
  std::int64_t cursor_t = end;
  while (cursor_t > epoch) {
    auto& rank_gates = gates[static_cast<std::size_t>(cursor_rank)];
    Gate* gate = nullptr;
    for (auto it = rank_gates.rbegin(); it != rank_gates.rend(); ++it) {
      if (it->t_ns <= cursor_t && !it->consumed) {
        gate = &*it;
        break;
      }
    }
    if (gate == nullptr) {
      emit_compute(cursor_rank, epoch, cursor_t);
      break;
    }
    gate->consumed = true;
    emit_compute(cursor_rank, gate->t_ns, cursor_t);

    const std::int64_t t0 =
        std::max(epoch, gate->t_ns - gate->wait_ns);  // block start
    const auto send_it =
        gate->recv != nullptr ? sends.find(gate->recv->id) : sends.end();
    if (send_it == sends.end()) {
      // Barrier (or a recv whose send was never captured): the blocked
      // interval itself goes on the path and the walk stays on this rank.
      const char* what = gate->recv == nullptr ? "wait:barrier" : "wait:recv";
      if (gate->t_ns > t0) {
        out.critical_path.push_back(
            CriticalSegment{CriticalSegment::Kind::kWait,
                            ranks[static_cast<std::size_t>(cursor_rank)].rank(),
                            what, t0, gate->t_ns});
      }
      cursor_t = t0;
      continue;
    }

    // Paired recv: the path crosses to the sender. The transfer occupies
    // [jump, t_f]; anything between t0 and the send is covered on the
    // sender's side after the jump (that idle time is the sender's fault —
    // it is already tallied in caused_wait_ns above).
    const auto& send = send_it->second;
    const std::int64_t jump =
        std::max(t0, std::min(send.flow->t_ns, gate->t_ns));
    if (gate->t_ns > jump) {
      const int tag = send.flow->tag;
      out.critical_path.push_back(CriticalSegment{
          CriticalSegment::Kind::kComm,
          ranks[static_cast<std::size_t>(send.rank_index)].rank(),
          tag >= 0 ? "comm:" + comm::tag_name(tag) : std::string("comm"),
          jump, gate->t_ns});
    }
    if (send.rank_index != cursor_rank) ++out.rank_jumps;
    cursor_rank = send.rank_index;
    cursor_t = jump;
  }

  std::reverse(out.critical_path.begin(), out.critical_path.end());
  for (const auto& seg : out.critical_path) {
    out.critical_total_ns += seg.duration_ns();
    switch (seg.kind) {
      case CriticalSegment::Kind::kCompute:
        out.critical_compute_ns += seg.duration_ns();
        break;
      case CriticalSegment::Kind::kComm:
        out.critical_comm_ns += seg.duration_ns();
        break;
      case CriticalSegment::Kind::kWait:
        out.critical_wait_ns += seg.duration_ns();
        break;
    }
  }

  out.stages.reserve(stage_accum.size());
  for (const auto& [stage, acc] : stage_accum) {
    StageRow row;
    row.stage = stage;
    row.ranks = acc.ranks;
    row.total_ns = acc.total_ns;
    row.max_ns = acc.max_ns;
    row.max_rank = acc.max_rank;
    row.wait_ns = acc.wait_ns;
    row.critical_ns = acc.critical_ns;
    out.stages.push_back(std::move(row));
  }
  std::sort(out.stages.begin(), out.stages.end(),
            [](const StageRow& a, const StageRow& b) {
              return a.total_ns != b.total_ns ? a.total_ns > b.total_ns
                                              : a.stage < b.stage;
            });
  return out;
}

std::string TraceAnalysis::format() const {
  std::string outs;
  char line[256];
  std::snprintf(line, sizeof(line),
                "== trace analysis: %d ranks, wall %.3f ms ==\n", ranks,
                static_cast<double>(wall_ns) * 1e-6);
  outs += line;
  std::snprintf(
      line, sizeof(line),
      "critical path: %.3f ms (%.1f%% of wall) = compute %.3f ms (%.1f%%)"
      " + comm %.3f ms (%.1f%%) + wait %.3f ms (%.1f%%)\n",
      static_cast<double>(critical_total_ns) * 1e-6,
      pct(critical_total_ns, wall_ns),
      static_cast<double>(critical_compute_ns) * 1e-6,
      pct(critical_compute_ns, critical_total_ns),
      static_cast<double>(critical_comm_ns) * 1e-6,
      pct(critical_comm_ns, critical_total_ns),
      static_cast<double>(critical_wait_ns) * 1e-6,
      pct(critical_wait_ns, critical_total_ns));
  outs += line;
  std::snprintf(line, sizeof(line),
                "               %zu segments, %d cross-rank jumps\n",
                critical_path.size(), rank_jumps);
  outs += line;

  std::snprintf(line, sizeof(line), "%-28s %5s %10s %10s %5s %6s %8s %8s\n",
                "stage", "ranks", "mean(ms)", "max(ms)", "@rank", "imb",
                "wait(ms)", "crit(ms)");
  outs += line;
  for (const auto& s : stages) {
    std::snprintf(line, sizeof(line),
                  "%-28s %5d %10.3f %10.3f %5d %6.2f %8.3f %8.3f\n",
                  s.stage.c_str(), s.ranks, s.mean_ns() * 1e-6,
                  static_cast<double>(s.max_ns) * 1e-6, s.max_rank,
                  s.imbalance(), static_cast<double>(s.wait_ns) * 1e-6,
                  static_cast<double>(s.critical_ns) * 1e-6);
    outs += line;
  }

  std::snprintf(line, sizeof(line), "%-6s %12s %12s %16s\n", "rank",
                "busy(ms)", "wait(ms)", "caused-wait(ms)");
  outs += line;
  for (const auto& a : per_rank) {
    std::snprintf(line, sizeof(line), "%-6d %12.3f %12.3f %16.3f\n", a.rank,
                  static_cast<double>(a.busy_ns) * 1e-6,
                  static_cast<double>(a.wait_ns) * 1e-6,
                  static_cast<double>(a.caused_wait_ns) * 1e-6);
    outs += line;
  }

  if (straggler_rank >= 0) {
    std::snprintf(line, sizeof(line),
                  "straggler: rank %d caused %.3f ms of peer wait"
                  " (%.1f%% of all attributed wait)\n",
                  straggler_rank,
                  static_cast<double>(straggler_caused_wait_ns) * 1e-6,
                  100.0 * straggler_share);
    outs += line;
  } else {
    outs += "straggler: none (no attributed wait)\n";
  }
  return outs;
}

void TraceAnalysis::to_json(JsonWriter& w) const {
  w.begin_object();
  w.key("ranks").value(ranks);
  w.key("epoch_ns").value(epoch_ns);
  w.key("end_ns").value(end_ns);
  w.key("wall_ns").value(wall_ns);

  w.key("critical_path").begin_object();
  w.key("total_ns").value(critical_total_ns);
  w.key("compute_ns").value(critical_compute_ns);
  w.key("comm_ns").value(critical_comm_ns);
  w.key("wait_ns").value(critical_wait_ns);
  w.key("rank_jumps").value(rank_jumps);
  w.key("segments").begin_array();
  for (const auto& seg : critical_path) {
    w.begin_object();
    w.key("rank").value(seg.rank);
    w.key("kind").value(kind_name(seg.kind));
    w.key("label").value(seg.label);
    w.key("start_ns").value(seg.start_ns);
    w.key("end_ns").value(seg.end_ns);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.key("stages").begin_array();
  for (const auto& s : stages) {
    w.begin_object();
    w.key("stage").value(s.stage);
    w.key("ranks").value(s.ranks);
    w.key("total_ns").value(s.total_ns);
    w.key("mean_ns").value(s.mean_ns());
    w.key("max_ns").value(s.max_ns);
    w.key("max_rank").value(s.max_rank);
    w.key("imbalance").value(s.imbalance());
    w.key("wait_ns").value(s.wait_ns);
    w.key("critical_ns").value(s.critical_ns);
    w.end_object();
  }
  w.end_array();

  w.key("per_rank").begin_array();
  for (const auto& a : per_rank) {
    w.begin_object();
    w.key("rank").value(a.rank);
    w.key("busy_ns").value(a.busy_ns);
    w.key("wait_ns").value(a.wait_ns);
    w.key("caused_wait_ns").value(a.caused_wait_ns);
    w.end_object();
  }
  w.end_array();

  w.key("straggler").begin_object();
  w.key("rank").value(straggler_rank);
  w.key("caused_wait_ns").value(straggler_caused_wait_ns);
  w.key("share").value(straggler_share);
  w.end_object();

  w.end_object();
}

std::vector<Timeline> timelines_from_chrome_trace(const JsonValue& doc) {
  std::vector<Timeline> out;
  const auto* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) return out;

  auto to_ns = [](double us) {
    return static_cast<std::int64_t>(std::llround(us * 1000.0));
  };
  // A track is (rank, incarnation): the writer emits pid=rank, tid=inc so
  // a respawned rank's pre- and post-kill spans live on separate lanes.
  // Keying by the pair keeps them separate through the round-trip too.
  std::map<std::pair<int, int>, Timeline> by_track;
  auto rank_tl = [&](const JsonValue& ev) -> Timeline* {
    const auto* pid = ev.find("pid");
    if (pid == nullptr || !pid->is_number()) return nullptr;
    const int rank = static_cast<int>(pid->number());
    const int inc =
        static_cast<int>(JsonValue::number_or(ev.find("tid"), 0.0));
    auto [it, inserted] = by_track.try_emplace({rank, inc}, rank);
    if (inserted) it->second.set_incarnation(inc);
    return &it->second;
  };

  for (const auto& ev : events->array()) {
    if (!ev.is_object()) continue;
    const auto* ph = ev.find("ph");
    if (ph == nullptr || !ph->is_string()) continue;
    auto* tl = rank_tl(ev);
    if (tl == nullptr) continue;
    const std::int64_t ts =
        to_ns(JsonValue::number_or(ev.find("ts"), 0.0));
    const auto* name = ev.find("name");
    const std::string name_s =
        name != nullptr && name->is_string() ? name->string() : "";

    if (ph->string() == "X") {
      const std::int64_t dur =
          to_ns(JsonValue::number_or(ev.find("dur"), 0.0));
      const auto* cat = ev.find("cat");
      if (cat != nullptr && cat->is_string() && cat->string() == "wait") {
        // Emitted as "wait:<kind>" ending at ts + dur.
        const auto kind =
            name_s.rfind("wait:", 0) == 0 ? name_s.substr(5) : name_s;
        tl->add_wait(kind, ts + dur, dur);
      } else {
        tl->add_span(name_s, ts, ts + dur);
      }
    } else if (ph->string() == "s" || ph->string() == "f") {
      const bool start = ph->string() == "s";
      const auto id = static_cast<std::uint64_t>(
          JsonValue::number_or(ev.find("id"), 0.0));
      const int peer = static_cast<int>(JsonValue::number_or(
          ev.find("args", start ? "dest" : "src"), -1.0));
      const auto bytes = static_cast<std::uint64_t>(
          JsonValue::number_or(ev.find("args", "bytes"), 0.0));
      const std::int64_t wait =
          to_ns(JsonValue::number_or(ev.find("args", "wait_us"), 0.0));
      // The document doesn't carry the numeric tag (flows are named
      // "msg:<tagname>"); -1 marks it unknown.
      tl->add_flow(id, ts, start, peer, /*tag=*/-1, bytes, wait);
    } else if (ph->string() == "i") {
      tl->add_instant(name_s, ts);
    } else if (ph->string() == "C") {
      tl->add_counter(name_s, ts,
                      JsonValue::number_or(ev.find("args", "value"), 0.0));
    }
    // "M" metadata: rank_tl() already registered the track's lane.
  }

  out.reserve(by_track.size());
  for (auto& [key, tl] : by_track) out.push_back(std::move(tl));
  return out;
}

}  // namespace keybin2::runtime
