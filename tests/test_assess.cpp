#include "core/assess.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace keybin2::core {
namespace {

/// A 1-D assessment scenario: one dimension, histogram over [0,1] with
/// `bins` bins, two modes at the given centres.
struct Scenario {
  std::vector<stats::Histogram> hists;
  std::vector<DimensionPartition> partitions;
  std::vector<Cell> cells;
};

Scenario make_bimodal(double c0, double c1, double sigma, std::uint64_t seed) {
  Scenario s;
  stats::Histogram h(0.0, 1.0, 64);
  Rng rng(seed);
  double mass0 = 0.0, mass1 = 0.0;
  for (int i = 0; i < 5000; ++i) {
    h.add(rng.normal(c0, sigma));
    mass0 += 1.0;
    h.add(rng.normal(c1, sigma));
    mass1 += 1.0;
  }
  s.hists.push_back(h);

  DimensionPartition p;
  p.bins = 64;
  p.cuts = {static_cast<std::size_t>((c0 + c1) / 2.0 * 64.0)};
  s.partitions.push_back(p);

  s.cells.push_back(Cell{{0}, mass0, -1});
  s.cells.push_back(Cell{{1}, mass1, -1});
  return s;
}

TEST(Assess, FewerThanTwoCellsScoresZero) {
  Scenario s = make_bimodal(0.3, 0.7, 0.05, 1);
  std::vector<Cell> one_cell{s.cells[0]};
  EXPECT_EQ(histogram_calinski_harabasz(s.hists, s.partitions, one_cell), 0.0);
  EXPECT_EQ(histogram_calinski_harabasz(s.hists, s.partitions, {}), 0.0);
}

TEST(Assess, SeparatedModesScoreHigherThanOverlapping) {
  const auto separated = make_bimodal(0.2, 0.8, 0.04, 2);
  const auto overlapping = make_bimodal(0.45, 0.55, 0.08, 3);
  const double s1 = histogram_calinski_harabasz(
      separated.hists, separated.partitions, separated.cells);
  const double s2 = histogram_calinski_harabasz(
      overlapping.hists, overlapping.partitions, overlapping.cells);
  EXPECT_GT(s1, s2 * 2.0);
}

TEST(Assess, TighterModesScoreHigher) {
  const auto tight = make_bimodal(0.25, 0.75, 0.02, 4);
  const auto loose = make_bimodal(0.25, 0.75, 0.10, 5);
  const double st = histogram_calinski_harabasz(tight.hists, tight.partitions,
                                                tight.cells);
  const double sl = histogram_calinski_harabasz(loose.hists, loose.partitions,
                                                loose.cells);
  EXPECT_GT(st, sl);
}

TEST(Assess, BreakdownReportsCentroidsAndCenter) {
  const auto s = make_bimodal(0.25, 0.75, 0.04, 6);
  AssessBreakdown breakdown;
  const double score = histogram_calinski_harabasz(s.hists, s.partitions,
                                                   s.cells, &breakdown);
  EXPECT_DOUBLE_EQ(score, breakdown.score);
  EXPECT_GT(breakdown.between, 0.0);
  EXPECT_GT(breakdown.within, 0.0);
  ASSERT_EQ(breakdown.centroids.size(), 2u);
  // Mode bins near 16 (0.25) and 48 (0.75).
  EXPECT_NEAR(static_cast<double>(breakdown.centroids[0][0]), 16.0, 4.0);
  EXPECT_NEAR(static_cast<double>(breakdown.centroids[1][0]), 48.0, 4.0);
  // Global centre = 50th percentile bin, between the two modes.
  ASSERT_EQ(breakdown.global_center.size(), 1u);
  EXPECT_GT(breakdown.global_center[0], 10u);
  EXPECT_LT(breakdown.global_center[0], 54u);
}

TEST(Assess, ArityMismatchThrows) {
  auto s = make_bimodal(0.3, 0.7, 0.05, 7);
  // 2-dim coords against a 1-dim partition set (two cells so the arity
  // check is reached past the |Q| < 2 early-out).
  std::vector<Cell> bad_cells{Cell{{0, 1}, 1.0, -1}, Cell{{1, 0}, 1.0, -1}};
  EXPECT_THROW(
      histogram_calinski_harabasz(s.hists, s.partitions, bad_cells), Error);
  std::vector<DimensionPartition> no_parts;
  EXPECT_THROW(histogram_calinski_harabasz(s.hists, no_parts, s.cells), Error);
}

TEST(Assess, TwoDimensionalCellsCombineDimensions) {
  // Two dims, each bimodal; four cells on the 2x2 primary grid.
  auto d0 = make_bimodal(0.25, 0.75, 0.04, 8);
  auto d1 = make_bimodal(0.3, 0.7, 0.04, 9);
  std::vector<stats::Histogram> hists{d0.hists[0], d1.hists[0]};
  std::vector<DimensionPartition> partitions{d0.partitions[0],
                                             d1.partitions[0]};
  std::vector<Cell> cells;
  for (std::uint32_t a = 0; a < 2; ++a) {
    for (std::uint32_t b = 0; b < 2; ++b) {
      cells.push_back(Cell{{a, b}, 2500.0, -1});
    }
  }
  const double score = histogram_calinski_harabasz(hists, partitions, cells);
  EXPECT_GT(score, 0.0);
}

TEST(Assess, MoreBinsThanCellsRequiredForPositiveScore) {
  // |Bins| == |Q| makes the dof factor zero.
  stats::Histogram h(0.0, 1.0, 2);
  h.add_to_bin(0, 10.0);
  h.add_to_bin(1, 10.0);
  DimensionPartition p;
  p.bins = 2;
  p.cuts = {1};
  std::vector<Cell> cells{Cell{{0}, 10.0, -1}, Cell{{1}, 10.0, -1}};
  EXPECT_EQ(histogram_calinski_harabasz({h}, {p}, cells), 0.0);
}

}  // namespace
}  // namespace keybin2::core
