# Empty compiler generated dependencies file for shapes_comparison.
# This may be replaced when dependencies are built.
