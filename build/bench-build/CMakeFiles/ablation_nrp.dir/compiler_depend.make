# Empty compiler generated dependencies file for ablation_nrp.
# This may be replaced when dependencies are built.
