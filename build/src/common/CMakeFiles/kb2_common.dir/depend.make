# Empty dependencies file for kb2_common.
# This may be replaced when dependencies are built.
