// Figure 4: qualitative clustering validation on a 10,000-frame trajectory.
//
// The paper overlays (1) stable segments found by the offline probabilistic
// HDR method (Eq. 3-4) — the "rectangles" — with (2) KeyBin2's cluster
// fingerprints — the "vertical dots" — and argues the fingerprint changes
// line up with metastable-phase boundaries while carrying finer-grained
// structure. We print both timelines against the generator's ground truth
// and score the alignment.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "md/fingerprint.hpp"
#include "md/insitu.hpp"
#include "md/stability.hpp"
#include "md/synthetic.hpp"
#include "stats/metrics.hpp"

int main(int argc, char** argv) {
  using namespace keybin2;
  auto opt = bench::Options::parse(argc, argv);
  md::SyntheticTrajectoryConfig cfg;
  cfg.residues = 97;  // 1a70 has 97 residues
  cfg.frames = opt.full ? 10000 : 4000;
  cfg.phases = 6;  // the paper's Figure 4 shows six meta-stable phases
  cfg.transition_frames = cfg.frames / 80;
  cfg.change_fraction = 0.45;
  cfg.seed = opt.seed;
  const auto st = md::generate_trajectory(cfg);
  std::printf(
      "Figure 4 reproduction: %zu-frame trajectory of a %zu-residue protein "
      "with %zu metastable phases.\n\n",
      cfg.frames, cfg.residues, cfg.phases);

  // (1) Offline probabilistic stability (the rectangles).
  md::StabilityParams sparams;
  sparams.n_representatives = 8;
  sparams.threshold_w = 0.05;
  sparams.seed = opt.seed;
  const auto stability = md::analyze_stability(st.trajectory, sparams);

  // (2) In-situ KeyBin2 fingerprints (the dots).
  md::InSituAnalyzer analyzer(cfg.residues, {}, cfg.frames / 8);
  for (std::size_t f = 0; f < st.trajectory.frames(); ++f) {
    analyzer.push_frame(st.trajectory, f);
  }
  analyzer.refit();
  const auto fingerprint = analyzer.relabel_all();
  const auto fp_segments =
      md::fingerprint_segments(fingerprint, /*min_run=*/cfg.frames / 400);

  std::printf("HDR-stable segments (rectangles):\n");
  for (const auto& seg : stability.segments) {
    if (seg.end - seg.begin < sparams.window) continue;  // sub-window noise
    std::printf("  frames [%5zu, %5zu)  label %d\n", seg.begin, seg.end,
                seg.label);
  }
  std::printf("\nKeyBin2 fingerprint segments (dots):\n");
  for (const auto& seg : fp_segments) {
    std::printf("  frames [%5zu, %5zu)  cluster %d\n", seg.begin, seg.end,
                seg.label);
  }

  // Ground truth phase boundaries for scoring.
  std::vector<std::size_t> true_boundaries;
  for (std::size_t f = 1; f < st.phase.size(); ++f) {
    if (st.phase[f] != st.phase[f - 1]) true_boundaries.push_back(f);
  }
  const auto predicted =
      md::change_points(fingerprint, /*min_run=*/cfg.frames / 400);
  const auto boundary = md::boundary_agreement(
      predicted, true_boundaries, /*tolerance=*/cfg.transition_frames * 2);
  std::vector<int> truth(st.phase.begin(), st.phase.end());
  const double ari = stats::adjusted_rand_index(fingerprint, truth);

  std::printf("\nAlignment of fingerprints with ground-truth phases:\n");
  std::printf("  fingerprint clusters: %zu (true phases: %zu)\n",
              stats::distinct_labels(fingerprint), cfg.phases);
  std::printf("  boundary recall %.3f, precision %.3f (tolerance %zu "
              "frames)\n",
              boundary.recall, boundary.precision,
              cfg.transition_frames * 2);
  std::printf("  adjusted Rand index vs phases: %.3f\n", ari);
  std::printf(
      "\nPaper reference: fingerprints change exactly where the HDR method "
      "marks phase changes, with finer-grained structure inside phases.\n");
  bench::Reporter::global().write(opt);
  return 0;
}
