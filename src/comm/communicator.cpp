#include "comm/communicator.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace keybin2::comm {

namespace {

// Reserved tag bases for collective plumbing (above kUserTagLimit).
constexpr int kTagBcast = Communicator::kUserTagLimit + 1;
constexpr int kTagReduceDouble = Communicator::kUserTagLimit + 2;
constexpr int kTagReduceU64 = Communicator::kUserTagLimit + 3;
constexpr int kTagGather = Communicator::kUserTagLimit + 4;
constexpr int kTagRingAccumulate = Communicator::kUserTagLimit + 5;
constexpr int kTagRingDistribute = Communicator::kUserTagLimit + 6;

template <typename T>
void apply_op(std::vector<T>& acc, const std::vector<T>& in, ReduceOp op) {
  KB2_CHECK_MSG(acc.size() == in.size(),
                "reduce length mismatch: " << acc.size() << " vs "
                                           << in.size());
  switch (op) {
    case ReduceOp::kSum:
      for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += in[i];
      break;
    case ReduceOp::kMin:
      for (std::size_t i = 0; i < acc.size(); ++i)
        acc[i] = std::min(acc[i], in[i]);
      break;
    case ReduceOp::kMax:
      for (std::size_t i = 0; i < acc.size(); ++i)
        acc[i] = std::max(acc[i], in[i]);
      break;
  }
}

template <typename T>
int reduce_tag();
template <>
int reduce_tag<double>() {
  return kTagReduceDouble;
}
template <>
int reduce_tag<std::uint64_t>() {
  return kTagReduceU64;
}

}  // namespace

void Communicator::check_rank(int r) const {
  KB2_CHECK_MSG(r >= 0 && r < size(), "rank " << r << " out of group size "
                                              << size());
}

void Communicator::check_user_tag(int tag) const {
  KB2_CHECK_MSG(tag >= 0 && tag < kUserTagLimit, "user tag " << tag
                                                             << " out of range");
}

void Communicator::broadcast(std::vector<std::byte>& data, int root) {
  check_rank(root);
  const int p = size();
  if (p == 1) return;
  const int me = rank();
  const int rel = (me - root + p) % p;

  // Binomial tree (MPICH-style): receive from the parent, then forward to
  // children at decreasing strides.
  int mask = 1;
  while (mask < p) {
    if (rel & mask) {
      int src = me - mask;
      if (src < 0) src += p;
      data = recv(src, kTagBcast);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (rel + mask < p) {
      int dst = me + mask;
      if (dst >= p) dst -= p;
      send(dst, kTagBcast, data);
    }
    mask >>= 1;
  }
}

template <typename T>
std::vector<T> Communicator::reduce_impl(std::span<const T> local, ReduceOp op,
                                         int root, int base_tag) {
  check_rank(root);
  const int p = size();
  std::vector<T> acc(local.begin(), local.end());
  if (p == 1) return acc;
  const int me = rank();
  const int rel = (me - root + p) % p;

  int mask = 1;
  bool sent = false;
  while (mask < p) {
    if ((rel & mask) == 0) {
      const int src_rel = rel | mask;
      if (src_rel < p) {
        const int src = (src_rel + root) % p;
        auto bytes = recv(src, base_tag);
        ByteReader reader(bytes);
        auto in = reader.template read_vec<T>();
        apply_op(acc, in, op);
      }
    } else {
      const int dst = ((rel & ~mask) + root) % p;
      ByteWriter writer;
      writer.write_vec(acc);
      send(dst, base_tag, writer.bytes());
      sent = true;
      break;
    }
    mask <<= 1;
  }
  if (sent) acc.clear();  // non-root holds no result
  return acc;
}

std::vector<double> Communicator::reduce(std::span<const double> local,
                                         ReduceOp op, int root) {
  return reduce_impl<double>(local, op, root, reduce_tag<double>());
}

std::vector<std::uint64_t> Communicator::reduce(
    std::span<const std::uint64_t> local, ReduceOp op, int root) {
  return reduce_impl<std::uint64_t>(local, op, root,
                                    reduce_tag<std::uint64_t>());
}

template <typename T>
std::vector<T> Communicator::allreduce_impl(std::span<const T> local,
                                            ReduceOp op) {
  auto result = reduce_impl<T>(local, op, /*root=*/0, reduce_tag<T>());
  ByteWriter writer;
  if (rank() == 0) writer.write_vec(result);
  auto bytes = writer.take();
  broadcast(bytes, /*root=*/0);
  if (rank() != 0) {
    ByteReader reader(bytes);
    result = reader.template read_vec<T>();
  }
  return result;
}

std::vector<double> Communicator::allreduce(std::span<const double> local,
                                            ReduceOp op) {
  return allreduce_impl<double>(local, op);
}

std::vector<std::uint64_t> Communicator::allreduce(
    std::span<const std::uint64_t> local, ReduceOp op) {
  return allreduce_impl<std::uint64_t>(local, op);
}

double Communicator::allreduce(double value, ReduceOp op) {
  return allreduce(std::span<const double>(&value, 1), op)[0];
}

std::uint64_t Communicator::allreduce(std::uint64_t value, ReduceOp op) {
  return allreduce(std::span<const std::uint64_t>(&value, 1), op)[0];
}

std::vector<double> Communicator::ring_allreduce(
    std::span<const double> local) {
  const int p = size();
  std::vector<double> acc(local.begin(), local.end());
  if (p == 1) return acc;
  const int me = rank();
  const int next = (me + 1) % p;
  const int prev = (me - 1 + p) % p;

  // Accumulating pass: 0 starts; each rank adds its share and forwards.
  if (me == 0) {
    ByteWriter w;
    w.write_vec(acc);
    send(next, kTagRingAccumulate, w.bytes());
  } else {
    auto bytes = recv(prev, kTagRingAccumulate);
    ByteReader r(bytes);
    auto partial = r.read_vec<double>();
    apply_op(partial, acc, ReduceOp::kSum);
    acc = std::move(partial);
    if (me != p - 1) {
      ByteWriter w;
      w.write_vec(acc);
      send(next, kTagRingAccumulate, w.bytes());
    }
  }

  // Distribution pass: the last rank holds the total; walk the ring again.
  if (me == p - 1) {
    ByteWriter w;
    w.write_vec(acc);
    send(next, kTagRingDistribute, w.bytes());
  } else {
    auto bytes = recv(prev, kTagRingDistribute);
    ByteReader r(bytes);
    acc = r.read_vec<double>();
    if (next != p - 1) {
      ByteWriter w;
      w.write_vec(acc);
      send(next, kTagRingDistribute, w.bytes());
    }
  }
  return acc;
}

std::vector<std::vector<std::byte>> Communicator::gather(
    std::span<const std::byte> local, int root) {
  check_rank(root);
  const int p = size();
  const int me = rank();
  std::vector<std::vector<std::byte>> out;
  if (me == root) {
    out.resize(p);
    out[static_cast<std::size_t>(me)].assign(local.begin(), local.end());
    for (int r = 0; r < p; ++r) {
      if (r == root) continue;
      out[static_cast<std::size_t>(r)] = recv(r, kTagGather);
    }
  } else {
    send(root, kTagGather, local);
  }
  return out;
}

std::vector<std::vector<std::byte>> Communicator::allgather(
    std::span<const std::byte> local) {
  auto gathered = gather(local, /*root=*/0);
  ByteWriter writer;
  if (rank() == 0) {
    writer.write<std::uint64_t>(gathered.size());
    for (const auto& blob : gathered) {
      writer.write<std::uint64_t>(blob.size());
      for (std::byte b : blob) writer.write(b);
    }
  }
  auto bytes = writer.take();
  broadcast(bytes, /*root=*/0);
  if (rank() != 0) {
    ByteReader reader(bytes);
    const auto n = reader.read<std::uint64_t>();
    gathered.resize(n);
    for (auto& blob : gathered) {
      const auto len = reader.read<std::uint64_t>();
      blob.resize(len);
      for (auto& b : blob) b = reader.read<std::byte>();
    }
  }
  return gathered;
}

void Communicator::send_doubles(int dest, int tag, std::span<const double> v) {
  check_user_tag(tag);
  ByteWriter writer;
  writer.write_span(v);
  send(dest, tag, writer.bytes());
}

std::vector<double> Communicator::recv_doubles(int src, int tag) {
  check_user_tag(tag);
  auto bytes = recv(src, tag);
  ByteReader reader(bytes);
  return reader.read_vec<double>();
}

// ---- SelfComm ----

void SelfComm::send(int dest, int tag, std::span<const std::byte> data) {
  KB2_CHECK_MSG(dest == 0, "SelfComm can only send to rank 0");
  queue_.emplace_back(tag, std::vector<std::byte>(data.begin(), data.end()));
  ++stats_.messages_sent;
  stats_.bytes_sent += data.size();
}

std::vector<std::byte> SelfComm::recv(int src, int tag) {
  KB2_CHECK_MSG(src == 0, "SelfComm can only receive from rank 0");
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->first == tag) {
      auto data = std::move(it->second);
      queue_.erase(it);
      ++stats_.messages_received;
      stats_.bytes_received += data.size();
      return data;
    }
  }
  throw Error("SelfComm::recv would deadlock: no queued message with tag " +
              std::to_string(tag));
}

}  // namespace keybin2::comm
