// Ablation D: moving-average smoothing vs kernel density estimation.
//
// §3.2: "Our simpler method reaches similar accuracy compared to KDE curves,
// but our smoothing technique is much faster than the kernel density
// estimation." We measure both halves of the claim: full-pipeline F1 with
// each smoother, and the raw per-histogram smoothing cost across bin counts.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/keybin2.hpp"
#include "data/gaussian_mixture.hpp"
#include "stats/histogram.hpp"
#include "stats/kde.hpp"
#include "stats/smoothing.hpp"

namespace {

using namespace keybin2;

void accuracy_comparison(const bench::Options& opt) {
  std::printf("Full pipeline F1 (4-component mixtures):\n");
  std::printf("%-10s %18s %18s\n", "dims", "moving average", "KDE");
  for (std::size_t dims : {20ul, 80ul, 320ul}) {
    bench::Series ma, kde;
    for (int run = 0; run < opt.runs; ++run) {
      const std::uint64_t seed = opt.seed + 100 * run;
      const auto spec = data::make_paper_mixture(dims, 4, seed);
      const auto d = data::sample(spec, 4000, seed + 1);

      core::Params pma;
      pma.seed = seed;
      ma.add(bench::score_labels(core::fit(d.points, pma).labels, d.labels).f1);

      core::Params pkde = pma;
      pkde.smoothing = core::Smoothing::kKernelDensity;
      kde.add(
          bench::score_labels(core::fit(d.points, pkde).labels, d.labels).f1);
    }
    std::printf("%-10zu %18s %18s\n", dims, ma.str().c_str(),
                kde.str().c_str());
  }
}

void speed_comparison() {
  std::printf("\nRaw smoothing cost per histogram (bimodal, 50k samples):\n");
  std::printf("%-8s %20s %20s %10s\n", "bins", "moving average (us)",
              "KDE (us)", "speedup");
  for (std::size_t bins : {64ul, 256ul, 1024ul, 4096ul}) {
    Rng rng(9);
    stats::Histogram h(0.0, 1.0, bins);
    for (int i = 0; i < 50000; ++i) {
      h.add(rng.normal(i % 2 ? 0.3 : 0.7, 0.07));
    }
    const int reps = 200;
    double sink = 0.0;  // keeps the optimizer honest
    WallTimer t1;
    for (int r = 0; r < reps; ++r) {
      const auto s = stats::moving_average(h.counts(),
                                           stats::smoothing_window(bins));
      sink += s[bins / 2];
    }
    const double ma_us = t1.seconds() * 1e6 / reps;
    const double bw = stats::silverman_bandwidth(h.counts());
    WallTimer t2;
    for (int r = 0; r < reps; ++r) {
      const auto s = stats::kde_smooth(h.counts(), bw);
      sink += s[bins / 2];
    }
    const double kde_us = t2.seconds() * 1e6 / reps;
    std::printf("%-8zu %20.1f %20.1f %9.1fx\n", bins, ma_us, kde_us,
                kde_us / ma_us);
    (void)sink;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  std::printf(
      "Ablation D: histogram smoothing — moving average (paper) vs KDE.\n\n");
  accuracy_comparison(opt);
  speed_comparison();
  std::printf(
      "\nPaper claim: similar accuracy, moving average much faster.\n");
  bench::Reporter::global().write(opt);
  return 0;
}
