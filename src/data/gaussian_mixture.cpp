#include "data/gaussian_mixture.hpp"

#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace keybin2::data {

GaussianMixtureSpec make_paper_mixture(std::size_t dims, std::size_t k,
                                       std::uint64_t seed, double separation) {
  KB2_CHECK_MSG(dims >= 1 && k >= 1, "need dims >= 1 and k >= 1");
  Rng rng(seed);
  GaussianMixtureSpec spec;
  spec.components.resize(k);
  for (std::size_t c = 0; c < k; ++c) {
    auto& comp = spec.components[c];
    comp.mean.resize(dims);
    comp.stddev.resize(dims);
    for (std::size_t j = 0; j < dims; ++j) {
      // Lattice-corner centres: each coordinate is 0 or `separation`, chosen
      // at random, plus jitter so no two components coincide. With enough
      // dimensions components are separated with overwhelming probability.
      comp.mean[j] = (rng.uniform() < 0.5 ? 0.0 : separation) +
                     rng.uniform(-0.5, 0.5);
      comp.stddev[j] = rng.uniform(0.5, 1.0);
    }
    comp.weight = 1.0;
  }
  return spec;
}

GaussianMixtureSpec make_redundant_mixture(std::size_t dims,
                                           std::size_t informative,
                                           std::size_t k, std::uint64_t seed,
                                           double separation) {
  KB2_CHECK_MSG(informative <= dims,
                "informative " << informative << " > dims " << dims);
  Rng rng(seed);
  auto spec = make_paper_mixture(dims, k, rng.fork_seed(), separation);
  // Overwrite the non-informative tail with component-independent noise.
  for (std::size_t j = informative; j < dims; ++j) {
    const double shared_mean = rng.uniform(0.0, separation);
    const double shared_std = rng.uniform(0.5, 1.5);
    for (auto& comp : spec.components) {
      comp.mean[j] = shared_mean;
      comp.stddev[j] = shared_std;
    }
  }
  return spec;
}

Dataset sample(const GaussianMixtureSpec& spec, std::size_t n,
               std::uint64_t seed) {
  KB2_CHECK_MSG(!spec.components.empty(), "mixture has no components");
  const std::size_t dims = spec.dims();
  for (const auto& c : spec.components) {
    KB2_CHECK_MSG(c.mean.size() == dims && c.stddev.size() == dims,
                  "component dimensionality mismatch");
  }
  const double total_weight = std::accumulate(
      spec.components.begin(), spec.components.end(), 0.0,
      [](double acc, const GaussianComponent& c) { return acc + c.weight; });
  KB2_CHECK_MSG(total_weight > 0.0, "mixture weights sum to zero");

  Rng rng(seed);
  Dataset out;
  out.points = Matrix(n, dims);
  out.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Pick a component by weight.
    double u = rng.uniform() * total_weight;
    std::size_t c = 0;
    for (; c + 1 < spec.components.size(); ++c) {
      u -= spec.components[c].weight;
      if (u <= 0.0) break;
    }
    const auto& comp = spec.components[c];
    auto row = out.points.row(i);
    for (std::size_t j = 0; j < dims; ++j) {
      row[j] = rng.normal(comp.mean[j], comp.stddev[j]);
    }
    out.labels[i] = static_cast<int>(c);
  }
  return out;
}

}  // namespace keybin2::data
