#include "core/out_of_core.hpp"

#include <algorithm>
#include <fstream>

#include "common/error.hpp"
#include "core/streaming.hpp"

namespace keybin2::core {

namespace {

constexpr std::uint64_t kMagic = 0x4b42324453ULL;  // data/io.cpp's "KB2DS"

struct BinaryHeader {
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  bool has_labels = false;
};

BinaryHeader read_header(std::ifstream& in, const std::string& path) {
  std::uint64_t magic = 0;
  BinaryHeader h;
  std::uint8_t has_labels = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  KB2_CHECK_MSG(in.good() && magic == kMagic,
                path << " is not a KB2 dataset file");
  in.read(reinterpret_cast<char*>(&h.rows), sizeof(h.rows));
  in.read(reinterpret_cast<char*>(&h.cols), sizeof(h.cols));
  in.read(reinterpret_cast<char*>(&has_labels), sizeof(has_labels));
  KB2_CHECK_MSG(in.good(), "truncated dataset header in " << path);
  h.has_labels = has_labels != 0;
  return h;
}

/// Invoke fn(points_chunk) over the file's rows, `chunk_points` at a time.
template <typename Fn>
std::size_t for_each_chunk(const std::string& path, std::size_t chunk_points,
                           Fn&& fn) {
  std::ifstream in(path, std::ios::binary);
  KB2_CHECK_MSG(in.good(), "cannot open " << path);
  const auto header = read_header(in, path);
  KB2_CHECK_MSG(header.cols >= 1, "dataset has no columns");

  std::size_t chunks = 0;
  std::uint64_t remaining = header.rows;
  while (remaining > 0) {
    const auto take = static_cast<std::size_t>(
        std::min<std::uint64_t>(remaining, chunk_points));
    std::vector<double> flat(take * header.cols);
    in.read(reinterpret_cast<char*>(flat.data()),
            static_cast<std::streamsize>(flat.size() * sizeof(double)));
    KB2_CHECK_MSG(in.good(), "truncated dataset body in " << path);
    fn(Matrix(take, header.cols, std::move(flat)));
    remaining -= take;
    ++chunks;
  }
  return chunks;
}

}  // namespace

OutOfCoreResult fit_from_file(runtime::Context& ctx,
                              const std::string& input_path,
                              const std::string& labels_path,
                              const Params& params,
                              std::size_t chunk_points) {
  KB2_CHECK_MSG(chunk_points >= 1, "chunk size must be positive");
  auto ooc_scope = ctx.tracer().scope("out_of_core");

  // Peek the header for the schema.
  BinaryHeader header;
  {
    std::ifstream in(input_path, std::ios::binary);
    KB2_CHECK_MSG(in.good(), "cannot open " << input_path);
    header = read_header(in, input_path);
  }
  KB2_CHECK_MSG(header.rows > 0, input_path << " holds no points");

  // Pass 1: histograms (and reservoir) only.
  StreamingKeyBin2 engine(header.cols, params);
  OutOfCoreResult result;
  result.dims = header.cols;
  {
    auto pass1_scope = ctx.tracer().scope("pass1_histograms");
    result.chunks = for_each_chunk(
        input_path, chunk_points,
        [&](const Matrix& chunk) { engine.push_batch(chunk); });
  }
  result.points = engine.points_seen();
  result.model = engine.refit(ctx);

  // Pass 2: label every point against the final model, streaming again.
  auto pass2_scope = ctx.tracer().scope("pass2_label");
  std::ofstream out(labels_path, std::ios::binary);
  KB2_CHECK_MSG(out.good(), "cannot open " << labels_path << " for writing");
  for_each_chunk(input_path, chunk_points, [&](const Matrix& chunk) {
    const auto labels = result.model.predict(chunk);
    out.write(reinterpret_cast<const char*>(labels.data()),
              static_cast<std::streamsize>(labels.size() * sizeof(int)));
  });
  KB2_CHECK_MSG(out.good(), "write to " << labels_path << " failed");
  return result;
}

OutOfCoreResult fit_from_file(const std::string& input_path,
                              const std::string& labels_path,
                              const Params& params,
                              std::size_t chunk_points) {
  runtime::Context ctx(params.seed);
  return fit_from_file(ctx, input_path, labels_path, params, chunk_points);
}

std::vector<int> read_labels(const std::string& labels_path) {
  std::ifstream in(labels_path, std::ios::binary | std::ios::ate);
  KB2_CHECK_MSG(in.good(), "cannot open " << labels_path);
  const auto bytes = static_cast<std::size_t>(in.tellg());
  KB2_CHECK_MSG(bytes % sizeof(int) == 0,
                labels_path << " is not a label stream");
  std::vector<int> labels(bytes / sizeof(int));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(labels.data()),
          static_cast<std::streamsize>(bytes));
  KB2_CHECK_MSG(in.good(), "truncated label stream " << labels_path);
  return labels;
}

}  // namespace keybin2::core
