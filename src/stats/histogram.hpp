// Binning histograms — the only data structure KeyBin2 ever communicates.
//
// Histogram is a fixed-range, fixed-width histogram with weighted (double)
// counts so merged/reduced histograms from many ranks stay exact.
// HierarchicalHistogram stores counts only at the deepest level (2^d_max
// bins); any coarser level d is derived by summing 2^(d_max-d) children, so
// all depths are consistent by construction (the paper keeps "at most d_max
// binning histograms" per dimension; 2-4 usually suffice).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace keybin2::stats {

class Histogram {
 public:
  Histogram() = default;

  /// Histogram over [lo, hi] with `bins` equal-width bins. Requires hi > lo.
  Histogram(double lo, double hi, std::size_t bins);

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t bins() const { return counts_.size(); }

  /// Bin index for x; values outside [lo, hi] clamp to the edge bins.
  std::size_t bin_of(double x) const;

  /// Center coordinate of bin b.
  double bin_center(std::size_t b) const;

  /// Left edge of bin b.
  double bin_left(std::size_t b) const { return lo_ + width() * static_cast<double>(b); }

  double width() const { return (hi_ - lo_) / static_cast<double>(bins()); }

  void add(double x, double weight = 1.0) { counts_[bin_of(x)] += weight; }
  void add_to_bin(std::size_t b, double weight) { counts_.at(b) += weight; }

  double count(std::size_t b) const { return counts_.at(b); }
  std::span<const double> counts() const { return counts_; }

  /// Total mass.
  double total() const;

  /// Merge another histogram with identical geometry.
  void merge(const Histogram& other);

  /// Counts normalized to sum 1 (empty histogram stays all-zero).
  std::vector<double> normalized() const;

  /// Replace counts wholesale (e.g. after an allreduce); size must match.
  void set_counts(std::vector<double> counts);

 private:
  double lo_ = 0.0, hi_ = 1.0;
  std::vector<double> counts_;
};

class HierarchicalHistogram {
 public:
  HierarchicalHistogram() = default;

  /// Hierarchy over [lo, hi] with depths 1..max_depth; depth d has 2^d bins.
  HierarchicalHistogram(double lo, double hi, int max_depth);

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  int max_depth() const { return max_depth_; }

  /// Number of bins at depth d (2^d).
  static std::size_t bins_at(int depth) {
    return std::size_t{1} << static_cast<unsigned>(depth);
  }

  /// Bin index of x at depth d; out-of-range values clamp to edge bins.
  std::size_t bin_of(double x, int depth) const;

  void add(double x, double weight = 1.0);

  /// Histogram at depth d, derived from deepest-level counts.
  Histogram level(int depth) const;

  /// Deepest-level counts (depth == max_depth), for communication.
  std::span<const double> deepest_counts() const { return deepest_; }
  void set_deepest_counts(std::vector<double> counts);
  /// Copy-assign counts from a borrowed span without reallocating.
  void set_deepest_counts(std::span<const double> counts);

  double total() const;

  void merge(const HierarchicalHistogram& other);

  /// Double the covered range to the right (hi' = lo + 2*(hi-lo)) or to the
  /// left (lo' = hi - 2*(hi-lo)), preserving mass: pairs of deepest bins
  /// collapse into one, freeing half the bins for the new territory. Used by
  /// the streaming engine when a point falls outside the current range.
  void expand_right();
  void expand_left();

 private:
  void check_depth(int depth) const;

  double lo_ = 0.0, hi_ = 1.0;
  int max_depth_ = 0;
  std::vector<double> deepest_;
};

/// Redistribute a histogram's mass onto a new geometry, splitting each source
/// bin's mass across the target bins it overlaps (mass is conserved exactly;
/// placement error is bounded by one source-bin width). Used by the streaming
/// engine to reconcile ranks whose ranges expanded differently.
Histogram rebin_proportional(const Histogram& src, double lo, double hi,
                             std::size_t bins);

/// Rebin a hierarchy's deepest level onto [lo, hi] (same max_depth).
HierarchicalHistogram rebin_hierarchy(const HierarchicalHistogram& src,
                                      double lo, double hi);

}  // namespace keybin2::stats
