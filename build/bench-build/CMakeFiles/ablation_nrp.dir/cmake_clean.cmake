file(REMOVE_RECURSE
  "../bench/ablation_nrp"
  "../bench/ablation_nrp.pdb"
  "CMakeFiles/ablation_nrp.dir/ablation_nrp.cpp.o"
  "CMakeFiles/ablation_nrp.dir/ablation_nrp.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nrp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
