#include "core/keybin2.hpp"

#include <gtest/gtest.h>

#include "comm/launch.hpp"
#include "common/error.hpp"
#include "data/gaussian_mixture.hpp"
#include "data/partition.hpp"
#include "data/shapes.hpp"
#include "stats/metrics.hpp"

namespace keybin2::core {
namespace {

TEST(Fit, RecoversWellSeparatedMixture) {
  const auto spec = data::make_paper_mixture(20, 4, 1);
  const auto d = data::sample(spec, 8000, 2);
  const auto result = fit(d.points);
  const auto scores = stats::pairwise_scores(result.labels, d.labels);
  EXPECT_GE(result.n_clusters(), 4);
  EXPECT_GT(scores.f1, 0.8);
  EXPECT_GT(scores.precision, 0.9);
}

TEST(Fit, IsDeterministic) {
  const auto spec = data::make_paper_mixture(10, 3, 3);
  const auto d = data::sample(spec, 2000, 4);
  const auto a = fit(d.points);
  const auto b = fit(d.points);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_DOUBLE_EQ(a.model.score(), b.model.score());
}

TEST(Fit, NeverToldK) {
  // KeyBin2 typically finds MORE clusters than truth (small outlier cells),
  // exactly as Tables 1-2 report — and must never find fewer real ones.
  const auto spec = data::make_paper_mixture(40, 4, 5);
  const auto d = data::sample(spec, 6000, 6);
  const auto result = fit(d.points);
  EXPECT_GE(result.n_clusters(), 4);
  EXPECT_LE(result.n_clusters(), 40);
}

TEST(Fit, SingleClusterDataYieldsOneCluster) {
  const auto spec = data::make_paper_mixture(10, 1, 7);
  const auto d = data::sample(spec, 2000, 8);
  const auto result = fit(d.points);
  EXPECT_LE(result.n_clusters(), 2);
  // Essentially everyone shares a label.
  std::size_t majority = 0;
  for (int l : result.labels) majority += l == result.labels[0];
  EXPECT_GT(static_cast<double>(majority) / 2000.0, 0.95);
}

TEST(Fit, HighDimensionalData) {
  const auto spec = data::make_paper_mixture(320, 4, 9);
  const auto d = data::sample(spec, 3000, 10);
  const auto result = fit(d.points);
  const auto scores = stats::pairwise_scores(result.labels, d.labels);
  EXPECT_GT(scores.f1, 0.7);
  // n_rp = 1.5 ln 320 = 9 projected dims.
  EXPECT_EQ(result.model.projection().cols(), 9u);
}

TEST(Fit, RedundantDimensionsGetCollapsed) {
  // 2 informative + 38 noise dims: after projection, informative structure
  // survives in few dims and the model still separates the mixture.
  const auto spec = data::make_redundant_mixture(40, 2, 3, 11, 20.0);
  const auto d = data::sample(spec, 4000, 12);
  const auto result = fit(d.points);
  EXPECT_LT(result.model.kept_dims().size(),
            result.model.projection().cols());
  const auto scores = stats::pairwise_scores(result.labels, d.labels);
  EXPECT_GT(scores.f1, 0.6);
}

TEST(Fit, CorrelatedPairNeedsProjection) {
  // Figure 1's scenario: axis-aligned binning (KeyBin v1, identity
  // projection) cannot separate correlated clusters; random projection can.
  const auto d = data::correlated_pair(2500, 4.0, 13);

  Params with_projection;
  with_projection.bootstrap_trials = 12;
  with_projection.n_rp = 2;
  const auto rp = fit(d.points, with_projection);
  const auto rp_scores = stats::pairwise_scores(rp.labels, d.labels);

  Params without;
  without.use_projection = false;
  const auto axis = fit(d.points, without);
  const auto axis_scores = stats::pairwise_scores(axis.labels, d.labels);

  EXPECT_GT(rp_scores.f1, axis_scores.f1);
  EXPECT_GT(rp_scores.f1, 0.85);
}

TEST(Fit, DiagnosticsCoverTrialsAndDepths) {
  const auto spec = data::make_paper_mixture(10, 2, 15);
  const auto d = data::sample(spec, 1000, 16);
  Params params;
  params.bootstrap_trials = 3;
  params.min_depth = 4;
  params.max_depth = 6;
  const auto result = fit(d.points, params);
  EXPECT_EQ(result.trials.size(), 3u * 3u);
  // The adopted model's score equals the best diagnostic score.
  double best = -1.0;
  for (const auto& t : result.trials) best = std::max(best, t.score);
  EXPECT_DOUBLE_EQ(result.model.score(), best);
  EXPECT_GE(result.model.depth(), 4);
  EXPECT_LE(result.model.depth(), 6);
}

TEST(Fit, InvalidParamsThrow) {
  Matrix points(10, 2);
  Params bad;
  bad.min_depth = 5;
  bad.max_depth = 3;
  EXPECT_THROW(fit(points, bad), Error);
  Params no_trials;
  no_trials.bootstrap_trials = 0;
  EXPECT_THROW(fit(points, no_trials), Error);
  EXPECT_THROW(fit(Matrix(0, 3)), Error);  // no points at all
}


TEST(Fit, RingTopologyMatchesTreeExactly) {
  // §3 step 3: the histogram merge works equally over a ring — same sums,
  // same model, same labels.
  const auto spec = data::make_paper_mixture(24, 3, 41);
  const auto d = data::sample(spec, 1600, 42);
  const auto shards = data::shard(d, 4);

  auto run_with = [&](Topology topology) {
    std::vector<int> combined(d.size());
    Params params;
    params.topology = topology;
    comm::run_ranks(4, [&](comm::Communicator& c) {
      const auto r = static_cast<std::size_t>(c.rank());
      const auto result = fit(c, shards[r].points, params);
      const auto ranges = data::partition_rows(d.size(), 4);
      std::copy(result.labels.begin(), result.labels.end(),
                combined.begin() +
                    static_cast<std::ptrdiff_t>(ranges[r].begin));
    });
    return combined;
  };

  EXPECT_EQ(run_with(Topology::kTree), run_with(Topology::kRing));
}

TEST(Fit, KdeSmoothingIsAViableAlternative) {
  // §3.2: the moving-average smoothing "reaches similar accuracy compared
  // to KDE curves" — swap the smoother and the pipeline still clusters.
  const auto spec = data::make_paper_mixture(20, 4, 43);
  const auto d = data::sample(spec, 4000, 44);
  Params kde;
  kde.smoothing = Smoothing::kKernelDensity;
  const auto result = fit(d.points, kde);
  EXPECT_GT(stats::pairwise_scores(result.labels, d.labels).f1, 0.75);
}


TEST(Fit, PerDimensionDepthIsAViableExtension) {
  // The extension lets each kept dimension pick its own key depth (the
  // paper keeps "at most d_max binning histograms" per dimension; nothing
  // forces all dimensions to agree). Quality must match the global sweep on
  // a standard mixture, and the model must round-trip.
  const auto spec = data::make_paper_mixture(40, 4, 61);
  const auto d = data::sample(spec, 4000, 62);
  Params params;
  params.per_dimension_depth = true;
  const auto result = fit(d.points, params);
  EXPECT_GT(stats::pairwise_scores(result.labels, d.labels).f1, 0.8);
  EXPECT_GE(result.n_clusters(), 4);

  // Depths are per kept dimension and within bounds.
  const auto& depths = result.model.depths();
  ASSERT_EQ(depths.size(), result.model.kept_dims().size());
  for (int depth : depths) {
    EXPECT_GE(depth, params.min_depth);
    EXPECT_LE(depth, params.max_depth);
  }

  ByteWriter w;
  result.model.serialize(w);
  ByteReader r(w.bytes());
  EXPECT_EQ(Model::deserialize(r).predict(d.points), result.labels);
}

TEST(Fit, PerDimensionDepthEvaluatesOneCandidatePerTrial) {
  const auto spec = data::make_paper_mixture(16, 3, 63);
  const auto d = data::sample(spec, 1500, 64);
  Params params;
  params.per_dimension_depth = true;
  params.bootstrap_trials = 5;
  const auto result = fit(d.points, params);
  // One diagnostics entry per trial (vs trials x depths in classic mode).
  EXPECT_EQ(result.trials.size(), 5u);
}

TEST(Fit, PerDimensionDepthDistributedEquivalence) {
  const auto spec = data::make_paper_mixture(24, 3, 65);
  const auto d = data::sample(spec, 1600, 66);
  Params params;
  params.per_dimension_depth = true;
  const auto serial = fit(d.points, params);

  const auto shards = data::shard(d, 4);
  std::vector<int> combined(d.size());
  comm::run_ranks(4, [&](comm::Communicator& c) {
    const auto r = static_cast<std::size_t>(c.rank());
    const auto result = fit(c, shards[r].points, params);
    const auto ranges = data::partition_rows(d.size(), 4);
    std::copy(result.labels.begin(), result.labels.end(),
              combined.begin() + static_cast<std::ptrdiff_t>(ranges[r].begin));
  });
  EXPECT_EQ(combined, serial.labels);
}

// ---- Distributed equivalence: the paper's central claim is that the
// distributed algorithm computes the same clustering as a centralized run,
// because only histograms are exchanged. ----

class DistributedEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(DistributedEquivalence, MatchesSerialExactly) {
  const int ranks = GetParam();
  const auto spec = data::make_paper_mixture(30, 4, 21);
  const auto d = data::sample(spec, 2400, 22);

  const auto serial = fit(d.points);

  const auto shards = data::shard(d, ranks);
  std::vector<std::vector<int>> local_labels(static_cast<std::size_t>(ranks));
  std::vector<double> scores(static_cast<std::size_t>(ranks));
  comm::run_ranks(ranks, [&](comm::Communicator& c) {
    const auto r = static_cast<std::size_t>(c.rank());
    const auto result = fit(c, shards[r].points);
    local_labels[r] = result.labels;
    scores[r] = result.model.score();
  });

  // Every rank got the same model...
  for (int r = 1; r < ranks; ++r) {
    EXPECT_DOUBLE_EQ(scores[static_cast<std::size_t>(r)], scores[0]);
  }
  EXPECT_DOUBLE_EQ(scores[0], serial.model.score());

  // ...and the concatenated labels equal the serial labels bit for bit.
  std::vector<int> combined;
  for (const auto& part : local_labels) {
    combined.insert(combined.end(), part.begin(), part.end());
  }
  EXPECT_EQ(combined, serial.labels);
}

INSTANTIATE_TEST_SUITE_P(Ranks, DistributedEquivalence,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(Distributed, AccuracyHoldsAcrossRankCounts) {
  const auto spec = data::make_paper_mixture(80, 4, 23);
  const auto d = data::sample(spec, 3200, 24);
  const auto shards = data::shard(d, 4);
  std::vector<int> combined(d.size());
  comm::run_ranks(4, [&](comm::Communicator& c) {
    const auto r = static_cast<std::size_t>(c.rank());
    const auto result = fit(c, shards[r].points);
    const auto ranges = data::partition_rows(d.size(), 4);
    std::copy(result.labels.begin(), result.labels.end(),
              combined.begin() +
                  static_cast<std::ptrdiff_t>(ranges[r].begin));
  });
  const auto scores = stats::pairwise_scores(combined, d.labels);
  EXPECT_GT(scores.f1, 0.8);
}

TEST(Distributed, HistogramsOnlyTrafficIsSmall) {
  // The paper: communication is O(2 K N_rp B) — kilobytes, independent of M.
  const auto spec = data::make_paper_mixture(20, 4, 25);
  const auto d = data::sample(spec, 4000, 26);
  const auto shards = data::shard(d, 4);
  const auto traffic = comm::run_ranks(4, [&](comm::Communicator& c) {
    fit(c, shards[static_cast<std::size_t>(c.rank())].points);
  });
  const double raw_bytes = static_cast<double>(d.size()) *
                           static_cast<double>(d.dims()) * sizeof(double);
  EXPECT_LT(static_cast<double>(traffic.bytes_sent), raw_bytes);
}

}  // namespace
}  // namespace keybin2::core
