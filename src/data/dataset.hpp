// Labelled dataset container.
//
// The evaluation uses classification problems so clustering accuracy can be
// quantified (paper §4); labels ride along with the points but are never
// visible to the clustering algorithms.
#pragma once

#include <vector>

#include "common/matrix.hpp"

namespace keybin2::data {

struct Dataset {
  Matrix points;            // M x N
  std::vector<int> labels;  // ground truth, empty if unlabelled

  std::size_t size() const { return points.rows(); }
  std::size_t dims() const { return points.cols(); }
  bool labelled() const { return !labels.empty(); }
};

/// Concatenate datasets (same dimensionality); labels concatenate when all
/// parts are labelled, otherwise the result is unlabelled.
Dataset concat(const std::vector<Dataset>& parts);

/// Min-max normalize each column into [0, 1] in place. Constant columns map
/// to 0.5. Returns per-column (min, max) so streams can reuse the bounds.
std::vector<std::pair<double, double>> minmax_normalize(Matrix& points);

}  // namespace keybin2::data
