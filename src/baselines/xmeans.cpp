#include "baselines/xmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace keybin2::baselines {

namespace {

/// Maximum-likelihood shared spherical variance of a clustering.
double spherical_variance(const Matrix& points, std::span<const int> labels,
                          const Matrix& centers) {
  const std::size_t n = points.rows();
  const std::size_t k = centers.rows();
  if (n <= k) return 0.0;
  double ss = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto c = static_cast<std::size_t>(labels[i]);
    auto row = points.row(i);
    auto center = centers.row(c);
    for (std::size_t j = 0; j < points.cols(); ++j) {
      const double d = row[j] - center[j];
      ss += d * d;
    }
  }
  return ss / (static_cast<double>(n - k) * static_cast<double>(points.cols()));
}

}  // namespace

double kmeans_bic(const Matrix& points, std::span<const int> labels,
                  const Matrix& centers) {
  const std::size_t n = points.rows();
  const std::size_t k = centers.rows();
  const std::size_t dims = points.cols();
  KB2_CHECK_MSG(labels.size() == n, "labels/points mismatch");
  if (n == 0) return 0.0;

  const double variance =
      std::max(spherical_variance(points, labels, centers), 1e-12);

  std::vector<std::size_t> sizes(k, 0);
  for (int l : labels) sizes[static_cast<std::size_t>(l)]++;

  // Log likelihood of the spherical mixture (Pelleg & Moore):
  //   ll = sum_c [ n_c ln n_c - n_c ln n - (n_c d / 2) ln(2 pi sigma^2) ]
  //        - (n - k) d / 2
  const double d = static_cast<double>(dims);
  double log_likelihood =
      -(static_cast<double>(n - k) * d) / 2.0;
  for (std::size_t c = 0; c < k; ++c) {
    const double nc = static_cast<double>(sizes[c]);
    if (nc <= 0.0) continue;
    log_likelihood += nc * std::log(nc) -
                      nc * std::log(static_cast<double>(n)) -
                      nc * d / 2.0 * std::log(2.0 * std::numbers::pi * variance);
  }

  const double free_params =
      static_cast<double>(k) * (static_cast<double>(dims) + 1.0);
  return log_likelihood -
         free_params / 2.0 * std::log(static_cast<double>(n));
}

XMeansResult xmeans(const Matrix& points, const XMeansParams& params) {
  KB2_CHECK_MSG(params.k_min >= 1 && params.k_min <= params.k_max,
                "invalid k range [" << params.k_min << ", " << params.k_max
                                    << "]");
  KB2_CHECK_MSG(points.rows() > params.k_min, "not enough points");
  Rng rng(params.seed);

  // Start: k_min-means.
  auto centers = kmeanspp_init(points, params.k_min, rng.fork_seed());
  auto model = lloyd(points, std::move(centers), params.max_iters, params.tol);

  XMeansResult result;
  for (int round = 0; round < 16; ++round) {
    const std::size_t k = model.centers.rows();
    if (k >= params.k_max) break;

    // Improve-structure: try to split each cluster locally.
    Matrix next_centers;
    bool any_split = false;
    for (std::size_t c = 0; c < k; ++c) {
      // Collect this cluster's points.
      Matrix members;
      for (std::size_t i = 0; i < points.rows(); ++i) {
        if (model.labels[i] == static_cast<int>(c)) {
          members.append_row(points.row(i));
        }
      }
      if (members.rows() < 4 || k + 1 > params.k_max) {
        next_centers.append_row(model.centers.row(c));
        continue;
      }

      // Parent BIC (one centre) vs child BIC (2-means on the region).
      Matrix parent_center;
      parent_center.append_row(model.centers.row(c));
      std::vector<int> parent_labels(members.rows(), 0);
      const double parent_bic =
          kmeans_bic(members, parent_labels, parent_center);

      auto child_init = kmeanspp_init(members, 2, rng.fork_seed());
      auto child =
          lloyd(members, std::move(child_init), params.max_iters, params.tol);
      const double child_bic = kmeans_bic(members, child.labels, child.centers);

      if (child_bic > parent_bic && next_centers.rows() + 2 <=
                                        params.k_max + (k - c - 1)) {
        next_centers.append_row(child.centers.row(0));
        next_centers.append_row(child.centers.row(1));
        any_split = true;
      } else {
        next_centers.append_row(model.centers.row(c));
      }
    }
    result.split_rounds = round + 1;
    if (!any_split) break;

    // Global refinement with the enlarged centre set.
    model = lloyd(points, std::move(next_centers), params.max_iters,
                  params.tol);
  }

  result.labels = std::move(model.labels);
  result.centers = std::move(model.centers);
  result.k = result.centers.rows();
  result.bic = kmeans_bic(points, result.labels, result.centers);
  return result;
}

}  // namespace keybin2::baselines
