// Classic (point-space) Calinski–Harabasz index, used to sanity-check the
// histogram-space variant in src/core/assess.hpp and to score baselines.
#pragma once

#include <span>

#include "common/matrix.hpp"

namespace keybin2::stats {

/// CH = [B/(k-1)] / [W/(n-k)] where B is between-cluster and W is
/// within-cluster dispersion (sum of squared distances to the respective
/// centroids). Returns 0 when k < 2 or k >= n. Labels may be any integers;
/// negative labels (noise) are ignored.
double calinski_harabasz(const Matrix& points, std::span<const int> labels);

}  // namespace keybin2::stats
