#include "comm/communicator.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>

#include "comm/launch.hpp"
#include "comm/thread_comm.hpp"
#include "common/error.hpp"

namespace keybin2::comm {
namespace {

std::vector<std::byte> to_bytes(const std::string& s) {
  std::vector<std::byte> out(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) out[i] = std::byte(s[i]);
  return out;
}

std::string to_string(const std::vector<std::byte>& b) {
  std::string out(b.size(), '\0');
  for (std::size_t i = 0; i < b.size(); ++i) out[i] = static_cast<char>(b[i]);
  return out;
}

TEST(SelfComm, RankAndSize) {
  SelfComm c;
  EXPECT_EQ(c.rank(), 0);
  EXPECT_EQ(c.size(), 1);
}

TEST(SelfComm, LoopbackSendRecv) {
  SelfComm c;
  c.send(0, 5, to_bytes("ping"));
  EXPECT_EQ(to_string(c.recv(0, 5)), "ping");
}

TEST(SelfComm, RecvWithoutMessageThrows) {
  SelfComm c;
  EXPECT_THROW(c.recv(0, 1), Error);
}

TEST(SelfComm, TagsAreIndependentChannels) {
  SelfComm c;
  c.send(0, 1, to_bytes("a"));
  c.send(0, 2, to_bytes("b"));
  EXPECT_EQ(to_string(c.recv(0, 2)), "b");
  EXPECT_EQ(to_string(c.recv(0, 1)), "a");
}

TEST(SelfComm, CollectivesAreIdentity) {
  SelfComm c;
  std::vector<double> v{1.0, 2.0};
  EXPECT_EQ(c.allreduce(v, ReduceOp::kSum), v);
  auto bytes = to_bytes("x");
  c.broadcast(bytes, 0);
  EXPECT_EQ(to_string(bytes), "x");
  auto gathered = c.gather(bytes, 0);
  ASSERT_EQ(gathered.size(), 1u);
  EXPECT_EQ(to_string(gathered[0]), "x");
}

TEST(ThreadComm, PointToPointDelivery) {
  run_ranks(2, [&](Communicator& c) {
    if (c.rank() == 0) {
      c.send(1, 7, to_bytes("hello"));
    } else {
      EXPECT_EQ(to_string(c.recv(0, 7)), "hello");
    }
  });
}

TEST(ThreadComm, FifoPerChannel) {
  run_ranks(2, [&](Communicator& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 10; ++i) {
        c.send(1, 3, to_bytes("msg" + std::to_string(i)));
      }
    } else {
      for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(to_string(c.recv(0, 3)), "msg" + std::to_string(i));
      }
    }
  });
}

TEST(ThreadComm, TagsDoNotCross) {
  run_ranks(2, [&](Communicator& c) {
    if (c.rank() == 0) {
      c.send(1, 1, to_bytes("one"));
      c.send(1, 2, to_bytes("two"));
    } else {
      EXPECT_EQ(to_string(c.recv(0, 2)), "two");
      EXPECT_EQ(to_string(c.recv(0, 1)), "one");
    }
  });
}

TEST(ThreadComm, BarrierSynchronizes) {
  std::atomic<int> counter{0};
  run_ranks(4, [&](Communicator& c) {
    counter.fetch_add(1);
    c.barrier();
    // After the barrier every rank must see all increments.
    EXPECT_EQ(counter.load(), 4);
  });
}

TEST(ThreadComm, TrafficStatsCountMessages) {
  auto total = run_ranks(2, [&](Communicator& c) {
    if (c.rank() == 0) c.send(1, 0, to_bytes("12345"));
    if (c.rank() == 1) c.recv(0, 0);
  });
  EXPECT_EQ(total.messages_sent, 1u);
  EXPECT_EQ(total.bytes_sent, 5u);
  EXPECT_EQ(total.messages_received, 1u);
  EXPECT_EQ(total.bytes_received, 5u);
}

TEST(ThreadComm, ReceiveCountersAttributedToReceiver) {
  run_ranks(2, [&](Communicator& c) {
    if (c.rank() == 0) {
      c.send(1, 0, to_bytes("abc"));
      c.barrier();
      // The sender's receive side stays untouched (barrier moves no bytes).
      EXPECT_EQ(c.stats().messages_sent, 1u);
      EXPECT_EQ(c.stats().messages_received, 0u);
    } else {
      c.recv(0, 0);
      const auto before_barrier = c.stats();
      EXPECT_EQ(before_barrier.messages_received, 1u);
      EXPECT_EQ(before_barrier.bytes_received, 3u);
      EXPECT_EQ(before_barrier.messages_sent, 0u);
      c.barrier();
    }
  });
}

TEST(SelfComm, LoopbackCountsBothDirections) {
  SelfComm c;
  c.send(0, 1, to_bytes("1234"));
  c.recv(0, 1);
  EXPECT_EQ(c.stats().messages_sent, 1u);
  EXPECT_EQ(c.stats().bytes_sent, 4u);
  EXPECT_EQ(c.stats().messages_received, 1u);
  EXPECT_EQ(c.stats().bytes_received, 4u);
}

TEST(ThreadComm, GroupSendReceiveTotalsSymmetric) {
  // Every message enqueued is eventually dequeued, so group-wide send and
  // receive totals must agree after any collective-heavy workload.
  auto total = run_ranks(4, [&](Communicator& c) {
    std::vector<double> v{static_cast<double>(c.rank()), 1.0};
    c.allreduce(v, ReduceOp::kSum);
    c.ring_allreduce(v);
    auto bytes = to_bytes("payload");
    c.broadcast(bytes, 0);
    c.gather(bytes, 0);
    c.barrier();
  });
  EXPECT_EQ(total.messages_received, total.messages_sent);
  EXPECT_EQ(total.bytes_received, total.bytes_sent);
  EXPECT_GT(total.messages_sent, 0u);
}

TEST(ThreadComm, SendToInvalidRankThrows) {
  EXPECT_THROW(run_ranks(2,
                         [&](Communicator& c) {
                           if (c.rank() == 0) c.send(5, 0, to_bytes("x"));
                         }),
               Error);
}

TEST(ThreadComm, TypedDoubleRoundtrip) {
  run_ranks(2, [&](Communicator& c) {
    if (c.rank() == 0) {
      c.send_doubles(1, 4, std::vector<double>{1.5, 2.5, 3.5});
    } else {
      EXPECT_EQ(c.recv_doubles(0, 4), (std::vector<double>{1.5, 2.5, 3.5}));
    }
  });
}

// ---- Collectives across a sweep of group sizes ----

class CollectiveSweep : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveSweep, BroadcastFromEveryRoot) {
  const int p = GetParam();
  for (int root = 0; root < p; ++root) {
    run_ranks(p, [&](Communicator& c) {
      auto data = c.rank() == root ? to_bytes("payload-" + std::to_string(root))
                                   : std::vector<std::byte>{};
      c.broadcast(data, root);
      EXPECT_EQ(to_string(data), "payload-" + std::to_string(root));
    });
  }
}

TEST_P(CollectiveSweep, ReduceSumToEveryRoot) {
  const int p = GetParam();
  for (int root = 0; root < p; ++root) {
    run_ranks(p, [&](Communicator& c) {
      std::vector<double> local{static_cast<double>(c.rank()), 1.0};
      auto result = c.reduce(local, ReduceOp::kSum, root);
      if (c.rank() == root) {
        ASSERT_EQ(result.size(), 2u);
        EXPECT_DOUBLE_EQ(result[0], p * (p - 1) / 2.0);
        EXPECT_DOUBLE_EQ(result[1], p);
      } else {
        EXPECT_TRUE(result.empty());
      }
    });
  }
}

TEST_P(CollectiveSweep, AllreduceSumMatchesOnAllRanks) {
  const int p = GetParam();
  run_ranks(p, [&](Communicator& c) {
    std::vector<double> local{static_cast<double>(c.rank() + 1)};
    auto result = c.allreduce(local, ReduceOp::kSum);
    ASSERT_EQ(result.size(), 1u);
    EXPECT_DOUBLE_EQ(result[0], p * (p + 1) / 2.0);
  });
}

TEST_P(CollectiveSweep, AllreduceMinMax) {
  const int p = GetParam();
  run_ranks(p, [&](Communicator& c) {
    const double mine = static_cast<double>(c.rank());
    EXPECT_DOUBLE_EQ(c.allreduce(mine, ReduceOp::kMin), 0.0);
    EXPECT_DOUBLE_EQ(c.allreduce(mine, ReduceOp::kMax),
                     static_cast<double>(p - 1));
  });
}

TEST_P(CollectiveSweep, AllreduceU64) {
  const int p = GetParam();
  run_ranks(p, [&](Communicator& c) {
    const std::uint64_t mine = 1ULL << c.rank();
    EXPECT_EQ(c.allreduce(mine, ReduceOp::kSum), (1ULL << p) - 1);
  });
}

TEST_P(CollectiveSweep, GatherCollectsInRankOrder) {
  const int p = GetParam();
  run_ranks(p, [&](Communicator& c) {
    auto blob = to_bytes("r" + std::to_string(c.rank()));
    auto gathered = c.gather(blob, 0);
    if (c.rank() == 0) {
      ASSERT_EQ(gathered.size(), static_cast<std::size_t>(p));
      for (int r = 0; r < p; ++r) {
        EXPECT_EQ(to_string(gathered[static_cast<std::size_t>(r)]),
                  "r" + std::to_string(r));
      }
    } else {
      EXPECT_TRUE(gathered.empty());
    }
  });
}

TEST_P(CollectiveSweep, AllgatherGivesEveryoneEverything) {
  const int p = GetParam();
  run_ranks(p, [&](Communicator& c) {
    auto blob = to_bytes(std::to_string(c.rank() * 11));
    auto gathered = c.allgather(blob);
    ASSERT_EQ(gathered.size(), static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(to_string(gathered[static_cast<std::size_t>(r)]),
                std::to_string(r * 11));
    }
  });
}

TEST_P(CollectiveSweep, ConsecutiveCollectivesDoNotInterfere) {
  const int p = GetParam();
  run_ranks(p, [&](Communicator& c) {
    for (int round = 0; round < 5; ++round) {
      const double sum = c.allreduce(static_cast<double>(round), ReduceOp::kSum);
      EXPECT_DOUBLE_EQ(sum, static_cast<double>(round * p));
    }
  });
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, CollectiveSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 16));


// ---- Ring allreduce (§3 step 3: "works as well for a ring topology") ----

class RingSweep : public ::testing::TestWithParam<int> {};

TEST_P(RingSweep, RingAllreduceMatchesTreeAllreduce) {
  const int p = GetParam();
  run_ranks(p, [&](Communicator& c) {
    std::vector<double> local{static_cast<double>(c.rank() + 1),
                              static_cast<double>(c.rank()) * 0.5};
    const auto ring = c.ring_allreduce(local);
    const auto tree = c.allreduce(local, ReduceOp::kSum);
    ASSERT_EQ(ring.size(), tree.size());
    for (std::size_t i = 0; i < ring.size(); ++i) {
      EXPECT_DOUBLE_EQ(ring[i], tree[i]);
    }
  });
}

TEST_P(RingSweep, RingUsesExactlyTwoPMinusOneMessages) {
  const int p = GetParam();
  const auto traffic = run_ranks(p, [&](Communicator& c) {
    std::vector<double> local(8, 1.0);
    c.ring_allreduce(local);
  });
  if (p == 1) {
    EXPECT_EQ(traffic.messages_sent, 0u);
  } else {
    EXPECT_EQ(traffic.messages_sent, static_cast<std::uint64_t>(2 * (p - 1)));
  }
}

INSTANTIATE_TEST_SUITE_P(RingSizes, RingSweep,
                         ::testing::Values(1, 2, 3, 4, 8, 16));

TEST(Ring, ConsecutiveRingOpsDoNotInterfere) {
  run_ranks(4, [&](Communicator& c) {
    for (int round = 1; round <= 4; ++round) {
      std::vector<double> local{static_cast<double>(round)};
      EXPECT_DOUBLE_EQ(c.ring_allreduce(local)[0], 4.0 * round);
    }
  });
}

// ---- Adaptive allreduce: recursive halving + sparse segments ----

class AlgoSweep : public ::testing::TestWithParam<int> {};

TEST_P(AlgoSweep, RecursiveHalvingMatchesTreeForAllOps) {
  const int p = GetParam();
  run_ranks(p, [&](Communicator& c) {
    // Deliberately irregular per-rank values, length above AND below any
    // internal thresholds.
    for (std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{130}}) {
      std::vector<double> local(n);
      for (std::size_t i = 0; i < n; ++i) {
        local[i] = static_cast<double>((c.rank() + 1) * 3 + i) * 0.25 -
                   static_cast<double>(i % 5);
      }
      for (auto op : {ReduceOp::kSum, ReduceOp::kMin, ReduceOp::kMax}) {
        const auto tree =
            c.allreduce(local, op, AllreduceAlgo::kTree);
        const auto rh =
            c.allreduce(local, op, AllreduceAlgo::kRecursiveHalving);
        ASSERT_EQ(tree.size(), rh.size());
        for (std::size_t i = 0; i < n; ++i) {
          // min/max are association-free; integer-scaled sums here are exact
          // under any order, so exact equality is the right bar.
          EXPECT_DOUBLE_EQ(tree[i], rh[i])
              << "op " << static_cast<int>(op) << " n " << n << " i " << i;
        }
      }
    }
  });
}

TEST_P(AlgoSweep, RecursiveHalvingIntegralSumsMatchTreeAndRingExactly) {
  const int p = GetParam();
  run_ranks(p, [&](Communicator& c) {
    // Histogram-like payload: integer-valued doubles, mostly zero.
    std::vector<double> local(256, 0.0);
    for (int k = 0; k < 8; ++k) {
      local[static_cast<std::size_t>((c.rank() * 37 + k * 11) % 256)] +=
          static_cast<double>(k + 1);
    }
    const auto tree = c.allreduce(local, ReduceOp::kSum, AllreduceAlgo::kTree);
    const auto rh =
        c.allreduce(local, ReduceOp::kSum, AllreduceAlgo::kRecursiveHalving);
    const auto ring = c.ring_allreduce(local);
    ASSERT_EQ(tree.size(), rh.size());
    ASSERT_EQ(tree.size(), ring.size());
    for (std::size_t i = 0; i < tree.size(); ++i) {
      EXPECT_EQ(tree[i], rh[i]) << i;   // bitwise: integral sums are exact
      EXPECT_EQ(tree[i], ring[i]) << i;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(AlgoSizes, AlgoSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 8));

TEST(AdaptiveAllreduce, AutoPicksTreeForSmallAndHalvingForLargePayloads) {
  run_ranks(4, [&](Communicator& c) {
    std::vector<double> small(Communicator::kRecursiveHalvingMinElements - 1,
                              1.0);
    ReduceProfile profile;
    c.allreduce(small, ReduceOp::kSum, AllreduceAlgo::kAuto, &profile);
    EXPECT_EQ(profile.algo, AllreduceAlgo::kTree);

    std::vector<double> large(Communicator::kRecursiveHalvingMinElements, 1.0);
    c.allreduce(large, ReduceOp::kSum, AllreduceAlgo::kAuto, &profile);
    EXPECT_EQ(profile.algo, AllreduceAlgo::kRecursiveHalving);
  });
}

TEST(AdaptiveAllreduce, SingleRankShortCircuitsToTree) {
  run_ranks(1, [&](Communicator& c) {
    std::vector<double> v(2048, 2.0);
    ReduceProfile profile;
    const auto out =
        c.allreduce(v, ReduceOp::kSum, AllreduceAlgo::kAuto, &profile);
    EXPECT_EQ(profile.algo, AllreduceAlgo::kTree);
    EXPECT_EQ(out, v);
  });
}

TEST(AdaptiveAllreduce, SparseSegmentsEngageOnSparsePayloads) {
  run_ranks(4, [&](Communicator& c) {
    // 1% density: every sparse-eligible block should take the sparse coding.
    std::vector<double> local(4096, 0.0);
    local[static_cast<std::size_t>(c.rank()) * 512] = 1.0;
    ReduceProfile profile;
    const auto out = c.allreduce(local, ReduceOp::kSum,
                                 AllreduceAlgo::kRecursiveHalving, &profile);
    EXPECT_GT(profile.sparse_blocks, 0u);
    double total = 0.0;
    for (double v : out) total += v;
    EXPECT_DOUBLE_EQ(total, 4.0);
    EXPECT_DOUBLE_EQ(out[0], 1.0);
    EXPECT_DOUBLE_EQ(out[512], 1.0);
  });
}

TEST(AdaptiveAllreduce, DensePayloadsStayDense) {
  run_ranks(4, [&](Communicator& c) {
    std::vector<double> local(2048);
    for (std::size_t i = 0; i < local.size(); ++i) {
      local[i] = static_cast<double>(i + c.rank() + 1);
    }
    ReduceProfile profile;
    c.allreduce(local, ReduceOp::kSum, AllreduceAlgo::kRecursiveHalving,
                &profile);
    EXPECT_EQ(profile.sparse_blocks, 0u);
    EXPECT_GT(profile.dense_blocks, 0u);
  });
}

TEST(AdaptiveAllreduce, SparseHalvingSendsFewerBytesThanTree) {
  constexpr std::size_t kN = 1 << 15;
  auto sparse_payload = [](int rank) {
    std::vector<double> v(kN, 0.0);
    for (int k = 0; k < 16; ++k) {
      v[static_cast<std::size_t>((rank * 131 + k * 977) % kN)] = 1.0;
    }
    return v;
  };
  const auto tree_traffic = run_ranks(8, [&](Communicator& c) {
    auto local = sparse_payload(c.rank());
    c.allreduce(local, ReduceOp::kSum, AllreduceAlgo::kTree);
  });
  const auto rh_traffic = run_ranks(8, [&](Communicator& c) {
    auto local = sparse_payload(c.rank());
    c.allreduce(local, ReduceOp::kSum, AllreduceAlgo::kRecursiveHalving);
  });
  // Acceptance bar: sparse recursive halving cuts reduce bytes by >= 40%.
  EXPECT_LT(static_cast<double>(rh_traffic.bytes_sent),
            0.6 * static_cast<double>(tree_traffic.bytes_sent))
      << "tree " << tree_traffic.bytes_sent << "B vs rh "
      << rh_traffic.bytes_sent << "B";
}

/// Per-rank sent-byte tally over the probe's on_send hook: the independent
/// accounting that ReduceProfile::bytes must reconcile with.
class SentBytesProbe : public CommProbe {
 public:
  explicit SentBytesProbe(int ranks) : sent_(static_cast<std::size_t>(ranks)) {
    for (auto& s : sent_) s.store(0);
  }
  void on_send(int self, int /*dest*/, int /*tag*/, std::size_t bytes,
               std::uint64_t /*flow*/, std::size_t /*queue*/) override {
    sent_[static_cast<std::size_t>(self)].fetch_add(bytes);
  }
  void on_recv(int, int, int, std::size_t, std::uint64_t,
               std::int64_t) override {}
  void on_barrier(int, std::int64_t) override {}
  std::uint64_t sent(int rank) const {
    return sent_[static_cast<std::size_t>(rank)].load();
  }

 private:
  std::vector<std::atomic<std::uint64_t>> sent_;
};

TEST(ReduceProfileBytes, ReconcileWithStatsAndProbeAcrossAlgos) {
  // Satellite contract: ReduceProfile::bytes is the TrafficStats bytes_sent
  // delta (CRC frame + sparse-segment headers included), so it must equal
  // both the stats delta and the probe's per-rank on_send sum — for the
  // exact algos and for the coreset plane alike.
  constexpr int kRanks = 4;
  SentBytesProbe probe(kRanks);
  run_ranks(kRanks, [&](Communicator& c) {
    c.set_probe(&probe);
    std::vector<double> local(4096, 0.0);
    for (int k = 0; k < 24; ++k) {
      local[static_cast<std::size_t>((c.rank() * 131 + k * 977) % 4096)] = 1.0;
    }
    for (const auto algo :
         {AllreduceAlgo::kTree, AllreduceAlgo::kRecursiveHalving}) {
      const auto probe_before = probe.sent(c.rank());
      const auto stats_before = c.stats().bytes_sent;
      ReduceProfile profile;
      c.allreduce(local, ReduceOp::kSum, algo, &profile);
      c.barrier();  // all sends land before reading the tallies
      EXPECT_EQ(profile.bytes, c.stats().bytes_sent - stats_before);
      EXPECT_EQ(profile.bytes, probe.sent(c.rank()) - probe_before);
      EXPECT_GT(profile.bytes, 0u);
    }
    {
      const auto probe_before = probe.sent(c.rank());
      const auto stats_before = c.stats().bytes_sent;
      ReduceProfile profile;
      coreset::Options opts;
      opts.max_cells = 256;
      c.coreset_allreduce(local, opts, &profile);
      c.barrier();
      EXPECT_EQ(profile.bytes, c.stats().bytes_sent - stats_before);
      EXPECT_EQ(profile.bytes, probe.sent(c.rank()) - probe_before);
    }
    c.set_probe(nullptr);
  });
}

TEST(AdaptiveAllreduce, ConsecutiveAdaptiveOpsDoNotInterfere) {
  run_ranks(5, [&](Communicator& c) {
    for (int round = 1; round <= 3; ++round) {
      std::vector<double> local(1536, static_cast<double>(round));
      const auto out = c.allreduce(local, ReduceOp::kSum,
                                   AllreduceAlgo::kRecursiveHalving);
      for (double v : out) ASSERT_DOUBLE_EQ(v, 5.0 * round);
    }
  });
}

TEST(RunRanks, CollectGathersPerRankResults) {
  auto results = run_ranks_collect<int>(
      4, [](Communicator& c) { return c.rank() * 10; });
  EXPECT_EQ(results, (std::vector<int>{0, 10, 20, 30}));
}

TEST(RunRanks, PropagatesRankException) {
  EXPECT_THROW(run_ranks(3,
                         [](Communicator& c) {
                           if (c.rank() == 2) throw Error("rank failure");
                           // Other ranks exit cleanly without waiting.
                         }),
               Error);
}

TEST(RunRanks, ZeroRanksRejected) {
  EXPECT_THROW(run_ranks(0, [](Communicator&) {}), Error);
}

// ---- Fault surface: timeouts, failure flags, recovery, subgroups ----

TEST(Timeout, RecvDeadlineThrowsTimeoutErrorWithAttribution) {
  run_ranks(2, [&](Communicator& c) {
    if (c.rank() == 0) {
      c.set_timeout(0.1);
      try {
        c.recv(1, 7);
        ADD_FAILURE() << "recv should have timed out";
      } catch (const TimeoutError& e) {
        EXPECT_EQ(e.self(), 0);
        EXPECT_EQ(e.src(), 1);
        EXPECT_EQ(e.tag(), 7);
        EXPECT_GE(e.elapsed_seconds(), 0.09);
        const std::string what = e.what();
        EXPECT_NE(what.find("rank 0"), std::string::npos);
        EXPECT_NE(what.find("peer=1"), std::string::npos);
        EXPECT_NE(what.find("tag=7"), std::string::npos);
      }
    } else {
      // Stay alive past rank 0's deadline so the failure mode under test
      // is the timeout, not "peer departed".
      std::this_thread::sleep_for(std::chrono::milliseconds(400));
    }
  });
}

TEST(Timeout, BarrierDeadlineThrowsInsteadOfHanging) {
  run_ranks(2, [&](Communicator& c) {
    if (c.rank() == 0) {
      c.set_timeout(0.1);
      EXPECT_THROW(c.barrier(), TimeoutError);
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(400));
    }
  });
}

TEST(Timeout, SelfCommRecvReportsImmediateTimeout) {
  // SelfComm honors the deadline API trivially: no peer exists, so an empty
  // queue can never fill and the timeout is immediate.
  SelfComm c;
  try {
    c.recv(0, 3);
    ADD_FAILURE() << "recv should have thrown";
  } catch (const TimeoutError& e) {
    EXPECT_EQ(e.self(), 0);
    EXPECT_EQ(e.tag(), 3);
    EXPECT_DOUBLE_EQ(e.elapsed_seconds(), 0.0);
  }
}

TEST(FailureFlags, PoisonErrorNamesRankPeerAndTag) {
  // Regression: a poisoned hub's abort must say WHO was doing WHAT — the
  // originating rank, the peer it waited on, and the tag — not just that
  // the group died.
  ThreadCommHub hub(2);
  auto c0 = hub.comm(0);
  std::thread waiter([&] {
    try {
      c0.recv(1, 42);
      ADD_FAILURE() << "recv should have aborted";
    } catch (const RankFailedError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("rank 0 recv(peer=1, tag=42)"), std::string::npos)
          << what;
      EXPECT_NE(what.find("cancelled by test"), std::string::npos) << what;
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  hub.poison("cancelled by test");
  waiter.join();
  EXPECT_EQ(hub.failed_ranks(), (std::vector<int>{0, 1}));
}

TEST(FailureFlags, RankDeathWakesBlockedReceiverNamingTheDeadRank) {
  EXPECT_THROW(
      run_ranks(3,
                [&](Communicator& c) {
                  if (c.rank() == 0) {
                    try {
                      c.recv(1, 5);  // waiting on rank 1, but rank 2 dies
                      ADD_FAILURE() << "recv should have aborted";
                    } catch (const RankFailedError& e) {
                      const std::string what = e.what();
                      EXPECT_NE(what.find("rank 2 failed: boom"),
                                std::string::npos)
                          << what;
                    }
                  } else if (c.rank() == 2) {
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(50));
                    throw Error("boom");
                  } else {
                    // Outlive the check so rank 0 is not disturbed by a
                    // clean departure first.
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(400));
                  }
                }),
      Error);
}

TEST(FailureFlags, SendToFailedRankThrows) {
  EXPECT_THROW(
      run_ranks(2,
                [&](Communicator& c) {
                  if (c.rank() == 1) throw Error("early death");
                  std::this_thread::sleep_for(
                      std::chrono::milliseconds(100));
                  const auto payload = to_bytes("x");
                  EXPECT_THROW(c.send(1, 0, payload), RankFailedError);
                }),
      Error);
}

TEST(Recovery, SurvivorsAgreeAndContinueInSubgroup) {
  std::atomic<int> recovered{0};
  EXPECT_THROW(
      run_ranks(4,
                [&](Communicator& c) {
                  if (c.rank() == 2) throw Error("node death");
                  try {
                    const double sum = c.allreduce(1.0, ReduceOp::kSum);
                    ADD_FAILURE()
                        << "allreduce completed without rank 2: " << sum;
                  } catch (const CommError&) {
                    const auto survivors = c.agree_survivors();
                    EXPECT_EQ(survivors, (std::vector<int>{0, 1, 3}));
                    SubgroupComm sub(c, survivors);
                    EXPECT_EQ(sub.size(), 3);
                    EXPECT_DOUBLE_EQ(sub.allreduce(1.0, ReduceOp::kSum),
                                     3.0);
                    sub.barrier();
                    recovered.fetch_add(1);
                  }
                }),
      Error);
  EXPECT_EQ(recovered.load(), 3);
}

TEST(Recovery, AgreeWithNoFailuresReturnsEveryone) {
  run_ranks(3, [&](Communicator& c) {
    EXPECT_EQ(c.agree_survivors(), (std::vector<int>{0, 1, 2}));
  });
}

TEST(Subgroup, DenselyRenumbersAndRunsCollectives) {
  run_ranks(4, [&](Communicator& c) {
    if (c.rank() == 1) {
      // Not a member; leave quietly. The members' traffic never names
      // this rank, so its departure cannot disturb them.
      return;
    }
    SubgroupComm sub(c, {0, 2, 3});
    EXPECT_EQ(sub.size(), 3);
    EXPECT_EQ(sub.members()[static_cast<std::size_t>(sub.rank())], c.rank());

    // Sum of parent ranks over the members.
    const double sum =
        sub.allreduce(static_cast<double>(c.rank()), ReduceOp::kSum);
    EXPECT_DOUBLE_EQ(sum, 5.0);

    // Broadcast from the subgroup root (parent rank 0).
    auto blob = sub.rank() == 0 ? to_bytes("hello") : std::vector<std::byte>{};
    sub.broadcast(blob, 0);
    EXPECT_EQ(to_string(blob), "hello");

    sub.barrier();
  });
}

TEST(Subgroup, SubgroupsCompose) {
  run_ranks(4, [&](Communicator& c) {
    if (c.rank() == 1) return;
    SubgroupComm sub(c, {0, 2, 3});
    if (c.rank() == 2) return;  // sub rank 1 leaves the nested group
    SubgroupComm nested(sub, {0, 2});
    EXPECT_EQ(nested.size(), 2);
    const double sum =
        nested.allreduce(static_cast<double>(c.rank()), ReduceOp::kSum);
    EXPECT_DOUBLE_EQ(sum, 3.0);  // parent ranks 0 and 3
  });
}

TEST(Subgroup, RejectsBadMemberLists) {
  run_ranks(2, [&](Communicator& c) {
    if (c.rank() == 1) {
      EXPECT_THROW(SubgroupComm(c, {0}), Error);      // caller not a member
    } else {
      EXPECT_THROW(SubgroupComm(c, {1, 0}), Error);   // not ascending
      EXPECT_THROW(SubgroupComm(c, {0, 5}), Error);   // out of range
    }
  });
}

}  // namespace
}  // namespace keybin2::comm
