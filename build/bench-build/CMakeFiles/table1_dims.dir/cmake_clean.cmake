file(REMOVE_RECURSE
  "../bench/table1_dims"
  "../bench/table1_dims.pdb"
  "CMakeFiles/table1_dims.dir/table1_dims.cpp.o"
  "CMakeFiles/table1_dims.dir/table1_dims.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_dims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
