#include "md/synthetic.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "md/geometry.hpp"

namespace keybin2::md {

namespace {

/// Structures a generated residue may adopt (kOther excluded: it is the
/// classifier's reject region, not a real conformation).
constexpr SecondaryStructure kGenerable[] = {
    SecondaryStructure::kAlphaHelix,     SecondaryStructure::kBetaStrand,
    SecondaryStructure::kPPIIHelix,      SecondaryStructure::kGammaPrimeTurn,
    SecondaryStructure::kGammaTurn,      SecondaryStructure::kCisPeptide,
};

SecondaryStructure random_structure(Rng& rng) {
  // Cis-peptide is rare in nature; keep it rare here too.
  const double u = rng.uniform();
  if (u < 0.02) return SecondaryStructure::kCisPeptide;
  return kGenerable[rng.uniform_int(5)];
}

/// Interpolate between two angles along the shortest arc.
double lerp_angle(double a, double b, double t) {
  const double d = wrap_deg(b - a);
  return wrap_deg(a + d * t);
}

}  // namespace

SyntheticTrajectory generate_trajectory(const SyntheticTrajectoryConfig& cfg) {
  KB2_CHECK_MSG(cfg.residues >= 1 && cfg.frames >= 2 && cfg.phases >= 1,
                "degenerate trajectory configuration");
  KB2_CHECK_MSG(cfg.phases * std::max<std::size_t>(cfg.transition_frames, 1) <=
                    cfg.frames,
                "transitions longer than the trajectory");
  Rng rng(cfg.seed);

  SyntheticTrajectory out;
  out.trajectory = Trajectory(cfg.frames, cfg.residues);
  out.phase.assign(cfg.frames, 0);
  out.in_transition.assign(cfg.frames, false);

  // Phase targets: phase 0 random; each later phase flips a random subset.
  out.phase_structures.resize(cfg.phases);
  out.phase_structures[0].resize(cfg.residues);
  for (auto& ss : out.phase_structures[0]) ss = random_structure(rng);
  for (std::size_t p = 1; p < cfg.phases; ++p) {
    out.phase_structures[p] = out.phase_structures[p - 1];
    const auto flips = std::max<std::size_t>(
        1, static_cast<std::size_t>(cfg.change_fraction *
                                    static_cast<double>(cfg.residues)));
    for (std::size_t f = 0; f < flips; ++f) {
      const auto r = rng.uniform_int(cfg.residues);
      auto next = random_structure(rng);
      while (next == out.phase_structures[p][r]) next = random_structure(rng);
      out.phase_structures[p][r] = next;
    }
  }

  // Phase boundaries: phases get roughly equal spans.
  std::vector<std::size_t> starts(cfg.phases);
  for (std::size_t p = 0; p < cfg.phases; ++p) {
    starts[p] = p * cfg.frames / cfg.phases;
  }

  for (std::size_t f = 0; f < cfg.frames; ++f) {
    // Locate the phase and whether f is inside the entry transition window.
    std::size_t p = cfg.phases - 1;
    while (p > 0 && f < starts[p]) --p;
    const bool transition =
        p > 0 && f < starts[p] + cfg.transition_frames;
    out.phase[f] = static_cast<int>(p);
    out.in_transition[f] = transition;

    const double t =
        transition ? static_cast<double>(f - starts[p]) /
                         static_cast<double>(cfg.transition_frames)
                   : 1.0;
    const double jitter =
        transition ? cfg.transition_jitter_deg : cfg.jitter_deg;

    for (std::size_t r = 0; r < cfg.residues; ++r) {
      const auto target = canonical_torsions(out.phase_structures[p][r]);
      TorsionTriple current = target;
      if (transition) {
        const auto prev = canonical_torsions(out.phase_structures[p - 1][r]);
        current.phi = lerp_angle(prev.phi, target.phi, t);
        current.psi = lerp_angle(prev.psi, target.psi, t);
        current.omega = lerp_angle(prev.omega, target.omega, t);
      }
      out.trajectory.phi(f, r) = wrap_deg(current.phi + rng.normal(0.0, jitter));
      out.trajectory.psi(f, r) = wrap_deg(current.psi + rng.normal(0.0, jitter));
      // Omega is stiff: tiny jitter so trans/cis never flips by noise.
      out.trajectory.omega(f, r) =
          wrap_deg(current.omega + rng.normal(0.0, jitter * 0.25));
    }
  }
  return out;
}

std::vector<SyntheticTrajectoryConfig> make_model_library(std::uint64_t seed,
                                                          std::size_t count) {
  Rng rng(seed);
  std::vector<SyntheticTrajectoryConfig> configs;
  configs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    SyntheticTrajectoryConfig cfg;
    // Residues: log-normal-ish spread matching Table 3 (mean 193, sd 145,
    // min 58, max 747).
    const double ln = rng.normal(std::log(160.0), 0.55);
    cfg.residues = static_cast<std::size_t>(
        std::clamp(std::exp(ln), 58.0, 747.0));
    // Frames ("simulation time"): 2,000-20,000 with a peak near 10,000.
    const double frames = rng.normal(9800.0, 3400.0);
    cfg.frames = static_cast<std::size_t>(
        std::clamp(frames, 2000.0, 20000.0));
    cfg.phases = 3 + rng.uniform_int(5);  // 3..7 metastable phases
    cfg.transition_frames = 30 + rng.uniform_int(70);
    cfg.seed = rng.fork_seed();
    configs.push_back(cfg);
  }
  return configs;
}

}  // namespace keybin2::md
