#include "md/stability.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/error.hpp"
#include "md/builder.hpp"
#include "md/kabsch.hpp"
#include "md/synthetic.hpp"

namespace keybin2::md {
namespace {

TEST(HdrCenter, FullMassIsMidrange) {
  EXPECT_DOUBLE_EQ(hdr_center({1.0, 2.0, 3.0}, 1.0), 2.0);
}

TEST(HdrCenter, FindsDensestRegion) {
  // Mass concentrated near 0 with one far outlier: the 70% HDR ignores the
  // outlier.
  std::vector<double> samples{0.0, 0.05, 0.1, 0.12, 0.15, 0.2, 9.0};
  const double c = hdr_center(samples, 0.7);
  EXPECT_LT(c, 0.3);
}

TEST(HdrCenter, SymmetricDataIsCentred) {
  std::vector<double> samples;
  for (int i = 0; i <= 100; ++i) samples.push_back(i / 100.0);
  EXPECT_NEAR(hdr_center(samples, 0.7), 0.5, 0.16);
}

TEST(HdrCenter, Validation) {
  EXPECT_THROW(hdr_center({}, 0.7), Error);
  EXPECT_THROW(hdr_center({1.0}, 0.0), Error);
  EXPECT_THROW(hdr_center({1.0}, 1.5), Error);
  EXPECT_DOUBLE_EQ(hdr_center({5.0}, 0.7), 5.0);
}

TEST(Representatives, AreDistinctFrames) {
  const auto st = generate_trajectory({.residues = 20, .frames = 400,
                                       .phases = 3, .transition_frames = 20,
                                       .seed = 1});
  const auto reps = sample_representatives(st.trajectory, 6, 1.5, 2);
  EXPECT_EQ(reps.size(), 6u);
  std::set<std::size_t> unique(reps.begin(), reps.end());
  EXPECT_EQ(unique.size(), 6u);
  for (auto f : reps) EXPECT_LT(f, 400u);
}

TEST(Representatives, Validation) {
  const auto st = generate_trajectory({.residues = 5, .frames = 50,
                                       .phases = 2, .transition_frames = 5,
                                       .seed = 3});
  EXPECT_THROW(sample_representatives(st.trajectory, 1, 1.5, 1), Error);
  EXPECT_THROW(sample_representatives(st.trajectory, 51, 1.5, 1), Error);
}

TEST(Stability, ScoresAreProbabilityLike) {
  const auto st = generate_trajectory({.residues = 20, .frames = 500,
                                       .phases = 3, .transition_frames = 25,
                                       .seed = 4});
  StabilityParams params;
  params.n_representatives = 5;
  params.window = 50;
  const auto analysis = analyze_stability(st.trajectory, params);
  ASSERT_EQ(analysis.scores.size(), 500u);
  for (const auto& frame_scores : analysis.scores) {
    ASSERT_EQ(frame_scores.size(), 5u);
    for (double s : frame_scores) {
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0);
    }
  }
}

TEST(Stability, SegmentsAreOrderedAndLabelled) {
  const auto st = generate_trajectory({.residues = 30, .frames = 1200,
                                       .phases = 4, .transition_frames = 40,
                                       .seed = 5});
  StabilityParams params;
  params.n_representatives = 8;
  const auto analysis = analyze_stability(st.trajectory, params);
  std::size_t prev_end = 0;
  for (const auto& seg : analysis.segments) {
    EXPECT_GE(seg.begin, prev_end);
    EXPECT_LT(seg.begin, seg.end);
    EXPECT_GE(seg.label, 0);
    prev_end = seg.end;
  }
}

TEST(Stability, StableLabelMatchesSegments) {
  const auto st = generate_trajectory({.residues = 25, .frames = 800,
                                       .phases = 3, .transition_frames = 30,
                                       .seed = 6});
  const auto analysis = analyze_stability(st.trajectory, {});
  for (const auto& seg : analysis.segments) {
    for (std::size_t f = seg.begin; f < seg.end; ++f) {
      EXPECT_EQ(analysis.stable_label[f], seg.label);
    }
  }
}

TEST(Stability, FindsStableMassInsideMetastablePhases) {
  // The probabilistic method should mark a decent share of metastable frames
  // as stable — this is the paper's Figure 4 "rectangles".
  const auto st = generate_trajectory({.residues = 40, .frames = 2000,
                                       .phases = 4, .transition_frames = 60,
                                       .seed = 7});
  StabilityParams params;
  params.n_representatives = 8;
  params.threshold_w = 0.05;
  const auto analysis = analyze_stability(st.trajectory, params);
  std::size_t stable = 0;
  for (int l : analysis.stable_label) stable += l >= 0;
  EXPECT_GT(static_cast<double>(stable) / 2000.0, 0.3);
  EXPECT_FALSE(analysis.segments.empty());
}


TEST(Stability, CartesianAnalysisRunsAndDetectsStability) {
  // The Cartesian Eq.3 variant (NeRF backbone + Kabsch RMSD) must be a
  // drop-in replacement: probability-like scores and non-degenerate
  // stable segments on a phased trajectory.
  const auto st = generate_trajectory({.residues = 15, .frames = 400,
                                       .phases = 2, .transition_frames = 20,
                                       .change_fraction = 0.6, .seed = 9});
  StabilityParams params;
  params.n_representatives = 4;
  params.window = 40;
  params.threshold_w = 0.03;
  params.distance = ConformationDistance::kCartesian;
  const auto analysis = analyze_stability(st.trajectory, params);
  std::size_t stable = 0;
  for (int l : analysis.stable_label) stable += l >= 0;
  EXPECT_GT(stable, 50u);
  EXPECT_LT(stable, 400u);
  EXPECT_FALSE(analysis.segments.empty());
}

TEST(Stability, CartesianAndTorsionDistancesCorrelate) {
  // The torsion metric is the fast in-situ proxy for the Cartesian RMSD MD
  // practitioners use offline — across frame pairs the two must be
  // positively correlated.
  const auto st = generate_trajectory({.residues = 20, .frames = 300,
                                       .phases = 3, .transition_frames = 15,
                                       .change_fraction = 0.5, .seed = 10});
  std::vector<double> torsion_d, cartesian_d;
  for (std::size_t a = 0; a < 300; a += 29) {
    const auto chain_a = build_backbone(st.trajectory, a);
    for (std::size_t b = a + 7; b < 300; b += 31) {
      torsion_d.push_back(frame_rmsd(st.trajectory, a, b));
      cartesian_d.push_back(
          backbone_rmsd(chain_a, build_backbone(st.trajectory, b)));
    }
  }
  // Pearson correlation.
  const auto n = static_cast<double>(torsion_d.size());
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < torsion_d.size(); ++i) {
    mx += torsion_d[i];
    my += cartesian_d[i];
  }
  mx /= n;
  my /= n;
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < torsion_d.size(); ++i) {
    sxy += (torsion_d[i] - mx) * (cartesian_d[i] - my);
    sxx += (torsion_d[i] - mx) * (torsion_d[i] - mx);
    syy += (cartesian_d[i] - my) * (cartesian_d[i] - my);
  }
  EXPECT_GT(sxy / std::sqrt(sxx * syy), 0.5);
}

TEST(Stability, ThresholdWidensOrNarrowsStability) {
  const auto st = generate_trajectory({.residues = 20, .frames = 600,
                                       .phases = 3, .transition_frames = 30,
                                       .seed = 8});
  StabilityParams lax, strict;
  lax.threshold_w = 0.01;
  strict.threshold_w = 0.4;
  const auto a = analyze_stability(st.trajectory, lax);
  const auto b = analyze_stability(st.trajectory, strict);
  std::size_t stable_lax = 0, stable_strict = 0;
  for (int l : a.stable_label) stable_lax += l >= 0;
  for (int l : b.stable_label) stable_strict += l >= 0;
  EXPECT_GE(stable_lax, stable_strict);
}

}  // namespace
}  // namespace keybin2::md
