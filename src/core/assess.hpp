// Assessing projected subspaces (paper §3.3, Eq. 2a-2c).
//
// Random projections vary in quality, so KeyBin2 bootstraps several and rates
// each candidate clustering with a Calinski–Harabasz index computed ENTIRELY
// in histogram space — bins, their densities, and primary-cluster ranges —
// never touching the data points, so the cost is independent of M:
//
//   cal = [B_Q / W_Q] * [(|Bins| - |Q|) / (|Q| - 1)] * log2(|Q| - 1)
//   W_Q = sum_q sum_j sum_{b in C_q} (b[j] - c_q[j])^2 * Density_b[j]
//   B_Q = sum_q sum_j (c_q[j] - c[j])^2 * sum_{b in C_q} Density_b[j]
//
// with c_q the cluster's per-dimension mode bin and c the per-dimension 50th
// percentile bin. One deviation from the printed formula: log2(|Q|-1) is
// floored at 1, because taken literally it zeroes out every two-cluster
// model (see DESIGN.md).
#pragma once

#include <vector>

#include "core/model.hpp"
#include "core/partitioner.hpp"
#include "stats/histogram.hpp"

namespace keybin2::core {

struct AssessBreakdown {
  double within = 0.0;    // W_Q
  double between = 0.0;   // B_Q
  double score = 0.0;     // cal
  std::vector<std::vector<std::size_t>> centroids;  // c_q[j] per cell
  std::vector<std::size_t> global_center;           // c[j]
};

/// Histogram-space CH of a candidate model. `dim_hists[j]` is the merged
/// histogram of kept dimension j at the candidate depth; `partitions[j]` its
/// primary clusters; `cells` the occupied cells with global densities.
/// Returns 0 when fewer than two cells exist.
double histogram_calinski_harabasz(
    const std::vector<stats::Histogram>& dim_hists,
    const std::vector<DimensionPartition>& partitions,
    const std::vector<Cell>& cells, AssessBreakdown* breakdown = nullptr);

}  // namespace keybin2::core
