#include "runtime/flight/flight.hpp"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/crc32.hpp"
#include "common/serialize.hpp"
#include "common/timer.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#endif

namespace keybin2::runtime::flight {

namespace {

// Same seqlock discipline as the telemetry segment: every shared word is
// touched through atomic_ref over plain PODs, so the structs stay trivially
// shareable across fork while reads/writes get real memory ordering.
std::uint64_t load_u64(const std::uint64_t& w, std::memory_order mo) {
  return std::atomic_ref<const std::uint64_t>(w).load(mo);
}
void store_u64(std::uint64_t& w, std::uint64_t v, std::memory_order mo) {
  std::atomic_ref<std::uint64_t>(w).store(v, mo);
}
std::uint32_t load_u32(const std::uint32_t& w, std::memory_order mo) {
  return std::atomic_ref<const std::uint32_t>(w).load(mo);
}
void store_u32(std::uint32_t& w, std::uint32_t v, std::memory_order mo) {
  std::atomic_ref<std::uint32_t>(w).store(v, mo);
}

constexpr std::size_t kControlBytes =
    (sizeof(SegmentControl) + 63) & ~std::size_t{63};

std::size_t rank_stride(std::uint32_t slots) {
  return sizeof(RankControl) + static_cast<std::size_t>(slots) *
                                   sizeof(FlightRecord);
}

std::size_t segment_bytes(int n_ranks, std::uint32_t slots) {
  return kControlBytes + static_cast<std::size_t>(n_ranks) *
                             rank_stride(slots);
}

// "KB2FLT01" little-endian.
constexpr std::uint64_t kDumpMagic = 0x3130544c46324b42ull;
constexpr std::uint32_t kDumpVersion = 1;
constexpr std::size_t kDumpHeaderBytes = 8 + 4 + 8 + 4;

[[noreturn]] void throw_defect(const std::string& path,
                               const std::string& defect,
                               const std::string& detail) {
  std::ostringstream os;
  os << "flight dump " << path << " " << detail;
  throw FlightDumpError(os.str(), path, defect);
}

}  // namespace

// ---- FlightSegment ----

FlightSegment::FlightSegment(int n_ranks, const std::string& job,
                             std::uint32_t slots_per_rank) {
  KB2_CHECK_MSG(n_ranks >= 1, "flight segment needs at least one rank");
  KB2_CHECK_MSG(slots_per_rank >= 8,
                "flight ring needs at least 8 slots, got " << slots_per_rank);
  bytes_ = segment_bytes(n_ranks, slots_per_rank);
#if defined(__unix__) || defined(__APPLE__)
  void* base = ::mmap(nullptr, bytes_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  KB2_CHECK_MSG(base != MAP_FAILED, "flight segment mmap failed ("
                                        << bytes_ << " bytes)");
  base_ = base;
  mapped_ = true;
#else
  base_ = ::operator new(bytes_);
  mapped_ = false;
#endif
  std::memset(base_, 0, bytes_);
  auto* ctl = static_cast<SegmentControl*>(base_);
  ctl->n_ranks = static_cast<std::uint32_t>(n_ranks);
  ctl->slots_per_rank = slots_per_rank;
  ctl->version = kVersion;
  ctl->created_ns = now_ns();
  const std::size_t n = std::min(job.size(), sizeof(ctl->job) - 1);
  std::memcpy(ctl->job, job.data(), n);
}

FlightSegment::~FlightSegment() {
  if (base_ == nullptr) return;
#if defined(__unix__) || defined(__APPLE__)
  if (mapped_) {
    ::munmap(base_, bytes_);
    return;
  }
#endif
  ::operator delete(base_);
}

SegmentControl* FlightSegment::control() const {
  return static_cast<SegmentControl*>(base_);
}

int FlightSegment::n_ranks() const {
  return static_cast<int>(control()->n_ranks);
}

std::uint32_t FlightSegment::slots_per_rank() const {
  return control()->slots_per_rank;
}

RankControl* FlightSegment::rank_control(int rank) const {
  char* p = static_cast<char*>(base_) + kControlBytes +
            static_cast<std::size_t>(rank) * rank_stride(slots_per_rank());
  return reinterpret_cast<RankControl*>(p);
}

FlightRecord* FlightSegment::slots(int rank) const {
  return reinterpret_cast<FlightRecord*>(
      reinterpret_cast<char*>(rank_control(rank)) + sizeof(RankControl));
}

void FlightSegment::freeze() {
  store_u32(control()->frozen, 1, std::memory_order_release);
}

void FlightSegment::unfreeze() {
  store_u32(control()->frozen, 0, std::memory_order_release);
}

bool FlightSegment::frozen() const {
  return load_u32(control()->frozen, std::memory_order_acquire) != 0;
}

// ---- FlightWriter ----

FlightWriter::FlightWriter(FlightSegment* seg, int rank, int incarnation)
    : seg_(seg),
      ctl_(seg->rank_control(rank)),
      slots_(seg->slots(rank)),
      n_slots_(seg->slots_per_rank()),
      incarnation_(static_cast<std::uint32_t>(incarnation)) {
  // Stamp the binding: which incarnation writes from which epoch. Published
  // before any record so a dump taken mid-bind still attributes correctly.
  store_u32(ctl_->incarnation, incarnation_, std::memory_order_relaxed);
  std::atomic_ref<std::int64_t>(ctl_->epoch_ns)
      .store(now_ns(), std::memory_order_relaxed);
  store_u32(ctl_->bound, 1, std::memory_order_release);
}

void FlightWriter::record(EventType type, EventPhase phase, int peer, int tag,
                          std::uint64_t bytes, const char* detail) {
  if (seg_ == nullptr) return;
  if (load_u32(seg_->control()->frozen, std::memory_order_relaxed) != 0) {
    store_u64(ctl_->dropped,
              load_u64(ctl_->dropped, std::memory_order_relaxed) + 1,
              std::memory_order_relaxed);
    return;
  }
  const std::uint64_t pos = load_u64(ctl_->head, std::memory_order_relaxed);
  FlightRecord& r = slots_[pos % n_slots_];
  store_u64(r.seq, 2 * pos + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  r.t_ns = now_ns();
  r.incarnation = incarnation_;
  r.type = static_cast<std::uint8_t>(type);
  r.phase = static_cast<std::uint8_t>(phase);
  r.pad = 0;
  r.peer = peer;
  r.tag = tag;
  r.bytes = bytes;
  std::memset(r.detail, 0, sizeof(r.detail));
  if (detail != nullptr) {
    // Keep the *tail* of long labels: "fit/trial3/bin" truncates to the
    // informative end, not the shared prefix.
    std::size_t len = std::strlen(detail);
    const char* src = detail;
    if (len > sizeof(r.detail) - 1) {
      src += len - (sizeof(r.detail) - 1);
      len = sizeof(r.detail) - 1;
    }
    std::memcpy(r.detail, src, len);
  }
  std::atomic_thread_fence(std::memory_order_release);
  store_u64(r.seq, 2 * pos + 2, std::memory_order_release);
  store_u64(ctl_->head, pos + 1, std::memory_order_release);
}

// ---- FlightRecorder ----

FlightRecorder::FlightRecorder(FlightSegment* seg, int rank, int incarnation)
    : writer_(seg, rank, incarnation) {}

void FlightRecorder::on_scope_open(std::string_view path) {
  const std::string p(path);
  writer_.record(EventType::kStage, EventPhase::kBegin, -1, -1, 0, p.c_str());
}

void FlightRecorder::on_scope_close(std::string_view path,
                                    std::int64_t wall_ns) {
  const std::string p(path);
  writer_.record(EventType::kStage, EventPhase::kEnd, -1, -1,
                 static_cast<std::uint64_t>(wall_ns), p.c_str());
}

namespace {
EventType op_type(comm::FlightHook::Op op) {
  switch (op) {
    case comm::FlightHook::kSend: return EventType::kSend;
    case comm::FlightHook::kRecv: return EventType::kRecv;
    case comm::FlightHook::kBarrier: return EventType::kBarrier;
    default: return EventType::kAgree;
  }
}
}  // namespace

void FlightRecorder::on_op_begin(Op op, int peer, int tag, std::size_t bytes) {
  writer_.record(op_type(op), EventPhase::kBegin, peer, tag, bytes, nullptr);
}

void FlightRecorder::on_op_end(Op op, int peer, int tag, std::size_t bytes) {
  writer_.record(op_type(op), EventPhase::kEnd, peer, tag, bytes, nullptr);
}

void FlightRecorder::event(EventType type, const char* detail,
                           std::uint64_t bytes) {
  writer_.record(type, EventPhase::kPoint, -1, -1, bytes, detail);
}

// ---- dump ----

namespace {

/// Seqlock-validated snapshot of one ring's valid tail, oldest first. Torn
/// or lapped slots (seq != 2*pos+2) are simply skipped: the writer may have
/// been killed mid-slot, which is exactly the case this code serves.
std::vector<FlightRecord> snapshot_ring(const FlightSegment& seg, int rank) {
  const RankControl* ctl = seg.rank_control(rank);
  const FlightRecord* slots = seg.slots(rank);
  const std::uint32_t n = seg.slots_per_rank();
  const std::uint64_t head = load_u64(ctl->head, std::memory_order_acquire);
  const std::uint64_t lo = head > n ? head - n : 0;
  std::vector<FlightRecord> out;
  out.reserve(static_cast<std::size_t>(head - lo));
  for (std::uint64_t pos = lo; pos < head; ++pos) {
    const FlightRecord& slot = slots[pos % n];
    const std::uint64_t s1 = load_u64(slot.seq, std::memory_order_acquire);
    if (s1 != 2 * pos + 2) continue;
    FlightRecord copy;
    std::memcpy(&copy, &slot, sizeof(copy));
    std::atomic_thread_fence(std::memory_order_acquire);
    const std::uint64_t s2 = load_u64(slot.seq, std::memory_order_acquire);
    if (s2 != s1) continue;
    out.push_back(copy);
  }
  return out;
}

void write_record(ByteWriter& w, const FlightRecord& r) {
  w.write<std::int64_t>(r.t_ns);
  w.write<std::uint32_t>(r.incarnation);
  w.write<std::uint8_t>(r.type);
  w.write<std::uint8_t>(r.phase);
  w.write<std::int32_t>(r.peer);
  w.write<std::int32_t>(r.tag);
  w.write<std::uint64_t>(r.bytes);
  for (char c : r.detail) w.write<std::uint8_t>(static_cast<std::uint8_t>(c));
}

FlightRecord read_record(ByteReader& r) {
  FlightRecord rec{};
  rec.t_ns = r.read<std::int64_t>();
  rec.incarnation = r.read<std::uint32_t>();
  rec.type = r.read<std::uint8_t>();
  rec.phase = r.read<std::uint8_t>();
  rec.peer = r.read<std::int32_t>();
  rec.tag = r.read<std::int32_t>();
  rec.bytes = r.read<std::uint64_t>();
  for (char& c : rec.detail) {
    c = static_cast<char>(r.read<std::uint8_t>());
  }
  return rec;
}

}  // namespace

void write_flight_dump(const std::string& path, const FlightSegment& seg,
                       const std::string& reason,
                       std::span<const FlightDeath> deaths) {
  ByteWriter payload;
  payload.write_string(std::string(seg.control()->job));
  payload.write_string(reason);
  payload.write<std::int64_t>(now_ns());
  const int n = seg.n_ranks();
  payload.write<std::uint32_t>(static_cast<std::uint32_t>(n));
  for (int r = 0; r < n; ++r) {
    const RankControl* ctl = seg.rank_control(r);
    payload.write<std::int32_t>(r);
    payload.write<std::uint32_t>(
        load_u32(ctl->incarnation, std::memory_order_acquire));
    payload.write<std::int64_t>(ctl->epoch_ns);
    payload.write<std::uint64_t>(load_u64(ctl->head,
                                          std::memory_order_acquire));
    payload.write<std::uint64_t>(load_u64(ctl->dropped,
                                          std::memory_order_relaxed));
    const FlightDeath* death = nullptr;
    for (const FlightDeath& d : deaths) {
      if (d.rank == r) death = &d;
    }
    payload.write<std::uint8_t>(death != nullptr ? 1 : 0);
    payload.write_string(death != nullptr ? death->reason : std::string());
    const auto records = snapshot_ring(seg, r);
    payload.write<std::uint64_t>(records.size());
    for (const FlightRecord& rec : records) write_record(payload, rec);
  }

  ByteWriter header;
  header.write<std::uint64_t>(kDumpMagic);
  header.write<std::uint32_t>(kDumpVersion);
  header.write<std::uint64_t>(
      static_cast<std::uint64_t>(payload.bytes().size()));
  header.write<std::uint32_t>(crc32(payload.bytes()));

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    KB2_CHECK_MSG(out.is_open(),
                  "cannot open flight dump " << tmp << " for writing");
    out.write(reinterpret_cast<const char*>(header.bytes().data()),
              static_cast<std::streamsize>(header.bytes().size()));
    out.write(reinterpret_cast<const char*>(payload.bytes().data()),
              static_cast<std::streamsize>(payload.bytes().size()));
    out.flush();
    KB2_CHECK_MSG(out.good(), "short write to flight dump " << tmp);
  }
  KB2_CHECK_MSG(std::rename(tmp.c_str(), path.c_str()) == 0,
                "cannot move flight dump " << tmp << " into place at "
                                           << path);
}

FlightDump read_flight_dump(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) throw_defect(path, "missing", "cannot be opened");
  std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  if (raw.size() < kDumpHeaderBytes) {
    std::ostringstream os;
    os << "truncated: " << raw.size() << " bytes, header alone needs "
       << kDumpHeaderBytes;
    throw_defect(path, "truncated", os.str());
  }
  ByteReader r(std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(raw.data()), raw.size()));
  const auto magic = r.read<std::uint64_t>();
  if (magic != kDumpMagic) {
    throw_defect(path, "bad_magic", "has bad magic (not a KB2FLT file)");
  }
  const auto version = r.read<std::uint32_t>();
  if (version != kDumpVersion) {
    std::ostringstream os;
    os << "has version " << version << ", this build reads version "
       << kDumpVersion;
    throw_defect(path, "version_skew", os.str());
  }
  const auto payload_size = r.read<std::uint64_t>();
  if (payload_size != raw.size() - kDumpHeaderBytes) {
    std::ostringstream os;
    os << "truncated: header promises " << payload_size
       << " payload bytes, file holds " << raw.size() - kDumpHeaderBytes;
    throw_defect(path, "truncated", os.str());
  }
  const auto expected_crc = r.read<std::uint32_t>();
  const std::span<const std::byte> payload(
      reinterpret_cast<const std::byte*>(raw.data()) + kDumpHeaderBytes,
      static_cast<std::size_t>(payload_size));
  const auto actual_crc = crc32(payload);
  if (actual_crc != expected_crc) {
    std::ostringstream os;
    os << "failed its CRC32 integrity check (stored " << expected_crc
       << ", computed " << actual_crc << ")";
    throw_defect(path, "crc_mismatch", os.str());
  }

  // CRC passed, so a decode failure below means a writer bug or a collision
  // — typed as "malformed" rather than crashing the reader.
  try {
    ByteReader p(payload);
    FlightDump dump;
    dump.job = p.read_string();
    dump.reason = p.read_string();
    dump.dump_t_ns = p.read<std::int64_t>();
    const auto n = p.read<std::uint32_t>();
    if (n == 0 || n > 4096) {
      throw_defect(path, "malformed",
                   "declares " + std::to_string(n) + " ranks");
    }
    dump.ranks.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      RankTrail t;
      t.rank = p.read<std::int32_t>();
      t.incarnation = p.read<std::uint32_t>();
      t.epoch_ns = p.read<std::int64_t>();
      t.records_total = p.read<std::uint64_t>();
      t.dropped = p.read<std::uint64_t>();
      t.dead = p.read<std::uint8_t>() != 0;
      t.death_reason = p.read_string();
      const auto n_records = p.read<std::uint64_t>();
      if (n_records > payload_size) {
        throw_defect(path, "malformed",
                     "declares " + std::to_string(n_records) +
                         " records for rank " + std::to_string(t.rank));
      }
      t.records.reserve(static_cast<std::size_t>(n_records));
      for (std::uint64_t j = 0; j < n_records; ++j) {
        t.records.push_back(read_record(p));
      }
      dump.ranks.push_back(std::move(t));
    }
    return dump;
  } catch (const FlightDumpError&) {
    throw;
  } catch (const std::exception& e) {
    throw_defect(path, "malformed",
                 std::string("payload does not decode: ") + e.what());
  }
}

void corrupt_flight_dump(const std::string& path, DumpCorruption mode,
                         std::uint64_t seed) {
  std::vector<char> raw;
  {
    std::ifstream in(path, std::ios::binary);
    KB2_CHECK_MSG(in.is_open(),
                  "cannot open flight dump " << path << " to corrupt");
    raw.assign((std::istreambuf_iterator<char>(in)),
               std::istreambuf_iterator<char>());
  }
  const std::size_t payload_bytes =
      raw.size() > kDumpHeaderBytes ? raw.size() - kDumpHeaderBytes : 0;
  switch (mode) {
    case DumpCorruption::kTruncateHeader:
      raw.resize(raw.size() < kDumpHeaderBytes ? raw.size() / 2
                                               : kDumpHeaderBytes / 2);
      break;
    case DumpCorruption::kTruncatePayload:
      KB2_CHECK_MSG(payload_bytes > 0,
                    "flight dump " << path << " has no payload to truncate");
      raw.resize(kDumpHeaderBytes + payload_bytes / 2);
      break;
    case DumpCorruption::kZeroSpan: {
      KB2_CHECK_MSG(payload_bytes > 0,
                    "flight dump " << path << " has no payload to zero");
      const std::size_t at = kDumpHeaderBytes + seed % payload_bytes;
      const std::size_t len = std::min<std::size_t>(16, raw.size() - at);
      std::memset(raw.data() + at, 0, len);
      break;
    }
    case DumpCorruption::kFlipBit: {
      KB2_CHECK_MSG(payload_bytes > 0,
                    "flight dump " << path << " has no payload to flip");
      const std::size_t at = kDumpHeaderBytes + seed % payload_bytes;
      raw[at] = static_cast<char>(raw[at] ^ (1 << (seed % 8)));
      break;
    }
    case DumpCorruption::kBadMagic:
      KB2_CHECK_MSG(raw.size() >= 8, "flight dump " << path << " too short");
      std::memset(raw.data(), 0x5a, 8);
      break;
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  KB2_CHECK_MSG(out.is_open(), "cannot rewrite flight dump " << path);
  out.write(raw.data(), static_cast<std::streamsize>(raw.size()));
  out.flush();
  KB2_CHECK_MSG(out.good(), "short write while corrupting " << path);
}

}  // namespace keybin2::runtime::flight
