file(REMOVE_RECURSE
  "../bench/fig1_projection"
  "../bench/fig1_projection.pdb"
  "CMakeFiles/fig1_projection.dir/fig1_projection.cpp.o"
  "CMakeFiles/fig1_projection.dir/fig1_projection.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
