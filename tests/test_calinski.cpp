#include "stats/calinski.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "data/gaussian_mixture.hpp"

namespace keybin2::stats {
namespace {

TEST(Calinski, SeparatedClustersScoreHigherThanShuffled) {
  const auto spec = data::make_paper_mixture(4, 3, 1);
  const auto d = data::sample(spec, 600, 2);
  const double good = calinski_harabasz(d.points, d.labels);

  // Shuffle labels: same sizes, meaningless assignment.
  auto shuffled = d.labels;
  for (std::size_t i = 0; i < shuffled.size(); ++i) {
    shuffled[i] = static_cast<int>(i % 3);
  }
  const double bad = calinski_harabasz(d.points, shuffled);
  EXPECT_GT(good, 10.0 * bad);
}

TEST(Calinski, DegenerateCasesAreZero) {
  Matrix points(4, 2);
  std::vector<int> one_cluster{0, 0, 0, 0};
  EXPECT_EQ(calinski_harabasz(points, one_cluster), 0.0);
  std::vector<int> all_distinct{0, 1, 2, 3};  // k == n
  EXPECT_EQ(calinski_harabasz(points, all_distinct), 0.0);
}

TEST(Calinski, NoiseLabelsAreIgnored) {
  const auto spec = data::make_paper_mixture(3, 2, 5);
  auto d = data::sample(spec, 200, 6);
  const double base = calinski_harabasz(d.points, d.labels);
  auto with_noise = d.labels;
  with_noise[0] = -1;
  with_noise[1] = -1;
  const double noisy = calinski_harabasz(d.points, with_noise);
  EXPECT_GT(noisy, 0.0);
  EXPECT_NEAR(noisy, base, base * 0.2);
}

TEST(Calinski, MismatchedSizesThrow) {
  Matrix points(3, 2);
  std::vector<int> labels{0, 1};
  EXPECT_THROW(calinski_harabasz(points, labels), Error);
}

TEST(Calinski, MoreSeparationScoresHigher) {
  const auto near_spec = data::make_paper_mixture(4, 2, 7, /*separation=*/3.0);
  const auto far_spec = data::make_paper_mixture(4, 2, 7, /*separation=*/30.0);
  const auto near_d = data::sample(near_spec, 400, 8);
  const auto far_d = data::sample(far_spec, 400, 8);
  EXPECT_GT(calinski_harabasz(far_d.points, far_d.labels),
            calinski_harabasz(near_d.points, near_d.labels));
}

}  // namespace
}  // namespace keybin2::stats
