// Minimal JSON emission and validation for the observability layer.
//
// The repo deliberately has no third-party JSON dependency, so the trace
// exporter, the event log, and the bench reporters share this tiny writer:
// a streaming emitter that tracks container nesting and inserts commas, plus
// a recursive-descent syntax validator used by tests and tools/trace_check
// to assert that everything we emit is well-formed.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace keybin2::runtime {

/// Escape a string for inclusion inside JSON quotes (adds no quotes itself).
std::string json_escape(std::string_view s);

/// Streaming JSON writer. Call begin_object()/begin_array() to open
/// containers, key() before each object member, and the value overloads to
/// emit scalars; commas are inserted automatically. str() returns the
/// document. The writer does not validate that keys/values alternate
/// correctly — json_validate() in tests keeps it honest.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emit `"name":` for the next object member.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double d);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool b);

  /// Splice a pre-rendered JSON fragment in as a value (no escaping).
  JsonWriter& raw(std::string_view json);

  const std::string& str() const { return out_; }

 private:
  void comma();

  std::string out_;
  // One entry per open container: the number of values emitted so far.
  std::vector<std::size_t> counts_;
  bool after_key_ = false;
};

/// True iff `text` is a single well-formed JSON value (object, array,
/// string, number, bool, or null) with nothing but whitespace after it.
bool json_validate(std::string_view text);

}  // namespace keybin2::runtime
