file(REMOVE_RECURSE
  "../bench/autok_comparison"
  "../bench/autok_comparison.pdb"
  "CMakeFiles/autok_comparison.dir/autok_comparison.cpp.o"
  "CMakeFiles/autok_comparison.dir/autok_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autok_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
