// kb2_top — attach to a running keybin2 job's telemetry segment and render
// a refreshing per-rank table (DESIGN.md §8).
//
//   kb2_top --pid 12345               # attach to /kb2-tele-12345
//   kb2_top --segment kb2-tele-smoke  # attach by explicit segment name
//   kb2_top --once --json             # one machine-readable snapshot
//
// The tool is a pure reader: it maps the segment read-only, copies slots
// with the seqlock protocol, and never blocks or perturbs the job. A rank
// whose heartbeat age keeps growing is hung or dead — that staleness being
// visible is the point.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "common/timer.hpp"
#include "runtime/profile/telemetry.hpp"

namespace {

using keybin2::runtime::profile::TelemetryReader;
using keybin2::runtime::profile::TelemetrySlot;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--pid PID | --segment NAME) [options]\n"
               "  --pid PID         attach to the job launched by PID\n"
               "  --segment NAME    attach to an explicit shm segment name\n"
               "  --once            print one snapshot and exit\n"
               "  --json            machine-readable output (implies table "
               "off)\n"
               "  --interval-ms N   refresh cadence (default 500)\n",
               argv0);
  return 2;
}

const char* state_name(std::uint32_t state) {
  switch (state) {
    case TelemetrySlot::kLive: return "live";
    case TelemetrySlot::kDone: return "done";
    default: return "-";
  }
}

void print_table(const TelemetryReader& reader, bool clear_screen) {
  if (clear_screen) std::fputs("\x1b[H\x1b[2J", stdout);
  const auto& hdr = reader.header();
  std::printf("kb2_top — job \"%s\" (launcher pid %d, %u ranks)\n\n",
              hdr.job, hdr.creator_pid, hdr.n_ranks);
  std::printf("%4s %5s %-7s %3s %-28s %12s %8s %9s %8s %6s %4s %4s %8s %8s "
              "%8s\n",
              "rank", "pid", "state", "inc", "stage", "points/s", "wait",
              "rss", "samples", "anom", "rsp", "rgr", "rec-p50", "rec-p99",
              "beat(ms)");
  const std::int64_t now = keybin2::now_ns();
  for (const auto& s : reader.snapshot()) {
    const double age_ms =
        s.slot.published_ns == 0
            ? -1.0
            : static_cast<double>(now - s.slot.published_ns) * 1e-6;
    // Long stage paths keep their tail — the leaf is the current stage.
    const char* stage = s.slot.stage;
    const std::size_t len = std::strlen(stage);
    if (len > 28) stage += len - 28;
    // Recovery latencies render in milliseconds; a rank that never ran the
    // survivor rendezvous shows "-" rather than a misleading zero.
    char p50[16];
    char p99[16];
    if (s.slot.recovery_p50_ns > 0) {
      std::snprintf(p50, sizeof(p50), "%.1fms",
                    static_cast<double>(s.slot.recovery_p50_ns) * 1e-6);
      std::snprintf(p99, sizeof(p99), "%.1fms",
                    static_cast<double>(s.slot.recovery_p99_ns) * 1e-6);
    } else {
      std::snprintf(p50, sizeof(p50), "-");
      std::snprintf(p99, sizeof(p99), "-");
    }
    std::printf("%4d %5d %-7s %3u %-28s %12.0f %7.1f%% %8lluK %8llu %6llu "
                "%4llu %4llu %8s %8s %8.0f\n",
                s.rank, s.slot.pid, state_name(s.slot.state),
                s.slot.incarnation, stage, s.slot.points_per_sec,
                s.slot.wait_ratio * 100.0,
                static_cast<unsigned long long>(s.slot.rss_kb),
                static_cast<unsigned long long>(s.slot.samples),
                static_cast<unsigned long long>(s.slot.anomalies),
                static_cast<unsigned long long>(s.slot.respawns_total),
                static_cast<unsigned long long>(s.slot.regrow_epochs), p50,
                p99, age_ms);
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  std::string segment;
  bool once = false;
  bool json = false;
  long interval_ms = 500;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--pid") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      segment = keybin2::runtime::profile::telemetry_name_for_pid(
          std::atoi(v));
    } else if (arg == "--segment") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      segment = v;
    } else if (arg == "--once") {
      once = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--interval-ms") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      interval_ms = std::atol(v);
      if (interval_ms < 10) interval_ms = 10;
    } else {
      return usage(argv[0]);
    }
  }
  if (segment.empty()) return usage(argv[0]);

  std::string error;
  auto reader = TelemetryReader::attach(segment, &error);
  if (reader == nullptr) {
    std::fprintf(stderr, "kb2_top: %s\n", error.c_str());
    return 1;
  }

  if (once) {
    if (json) {
      std::fputs(
          keybin2::runtime::profile::top_snapshot_json(*reader,
                                                       keybin2::now_ns())
              .c_str(),
          stdout);
    } else {
      print_table(*reader, /*clear_screen=*/false);
    }
    return 0;
  }

  // Refresh until the job unlinks the segment (our mapping stays valid; a
  // fresh attach failing is the job-ended signal).
  for (;;) {
    if (json) {
      std::fputs(
          keybin2::runtime::profile::top_snapshot_json(*reader,
                                                       keybin2::now_ns())
              .c_str(),
          stdout);
      std::fflush(stdout);
    } else {
      print_table(*reader, /*clear_screen=*/true);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    std::string probe_error;
    if (TelemetryReader::attach(segment, &probe_error) == nullptr) {
      if (!json) std::printf("\njob ended (%s)\n", probe_error.c_str());
      return 0;
    }
  }
}
