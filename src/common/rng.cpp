#include "common/rng.hpp"

#include <cmath>
#include <numbers>

namespace keybin2 {

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  if (n == 0) return 0;
  // Lemire's nearly-divisionless bounded sampling.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < n) {
    std::uint64_t t = (0ULL - n) % n;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  // Box–Muller with guard against log(0).
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  spare_ = r * std::sin(theta);
  has_spare_ = true;
  return r * std::cos(theta);
}

}  // namespace keybin2
