// In-situ protein folding analysis (paper §5).
//
// Simulates a protein folding trajectory with metastable and transition
// phases, streams frames through the in-situ analyzer as if they were being
// produced by a running MD simulation, and reports how the KeyBin2 cluster
// fingerprint lines up with the trajectory's true conformational phases.
//
//   ./examples/protein_insitu [frames] [residues] [phases]
#include <cstdio>
#include <cstdlib>

#include "common/timer.hpp"
#include "md/fingerprint.hpp"
#include "md/insitu.hpp"
#include "md/stability.hpp"
#include "md/synthetic.hpp"
#include "stats/metrics.hpp"

int main(int argc, char** argv) {
  using namespace keybin2;

  md::SyntheticTrajectoryConfig cfg;
  cfg.frames = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5000;
  cfg.residues = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 97;
  cfg.phases = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 5;
  cfg.transition_frames = cfg.frames / 80;
  cfg.seed = 2024;

  std::printf("Simulating a %zu-residue protein for %zu frames (%zu "
              "metastable phases)...\n",
              cfg.residues, cfg.frames, cfg.phases);
  const auto sim = md::generate_trajectory(cfg);

  // Stream frames into the analyzer as the "simulation" produces them.
  md::InSituAnalyzer analyzer(cfg.residues, {}, /*refit_interval=*/500);
  WallTimer timer;
  for (std::size_t f = 0; f < sim.trajectory.frames(); ++f) {
    analyzer.push_frame(sim.trajectory, f);
  }
  analyzer.refit();
  const double insitu_seconds = timer.seconds();

  const auto fingerprint = analyzer.relabel_all();
  const auto segments =
      md::fingerprint_segments(fingerprint, /*min_run=*/cfg.frames / 400);

  std::printf("\nIn-situ analysis took %.3f s (%.6f s/frame) — cheap enough "
              "to run alongside the simulation.\n",
              insitu_seconds,
              insitu_seconds / static_cast<double>(cfg.frames));
  std::printf("\nConformational timeline (cluster fingerprint):\n");
  for (const auto& seg : segments) {
    std::printf("  frames [%5zu, %5zu)  conformation cluster %d\n",
                seg.begin, seg.end, seg.label);
  }

  std::vector<int> truth(sim.phase.begin(), sim.phase.end());
  std::printf("\nAgreement with the simulation's true phases: ARI = %.3f\n",
              stats::adjusted_rand_index(fingerprint, truth));

  // Offline validation, as the paper does after a trajectory completes.
  md::StabilityParams sparams;
  sparams.threshold_w = 0.05;
  const auto stability = md::analyze_stability(sim.trajectory, sparams);
  std::printf("\nOffline HDR validation found %zu stable segments "
              "(Eq. 3-4):\n",
              stability.segments.size());
  for (const auto& seg : stability.segments) {
    if (seg.end - seg.begin < sparams.window) continue;
    std::printf("  frames [%5zu, %5zu)  representative %d\n", seg.begin,
                seg.end, seg.label);
  }
  return 0;
}
