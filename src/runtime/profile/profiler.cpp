#include "runtime/profile/profiler.hpp"

#include <algorithm>
#include <cstdio>

#include "comm/communicator.hpp"
#include "common/timer.hpp"
#include "runtime/flight/flight.hpp"
#include "runtime/health.hpp"
#include "runtime/log.hpp"
#include "runtime/metrics.hpp"
#include "runtime/timeline.hpp"

namespace keybin2::runtime::profile {

namespace {

/// Sum of a latency histogram's observations in ns (mean * count — the raw
/// sum is private to the histogram, but this reconstruction is exact enough
/// for a wait-ratio gauge).
double histogram_sum_ns(const std::map<std::string, LatencyHistogram>& hs,
                        const std::string& name) {
  const auto it = hs.find(name);
  if (it == hs.end()) return 0.0;
  return it->second.mean_ns() * static_cast<double>(it->second.count());
}

}  // namespace

Profiler::Profiler(comm::Communicator* comm, MetricsRegistry* metrics,
                   EventLog* log, ProfilerConfig config)
    : comm_(comm), metrics_(metrics), log_(log), config_(config),
      sampler_(&cursor_, &table_, &density_) {}

Profiler::~Profiler() { stop(); }

void Profiler::set_telemetry_slot(TelemetrySlot* slot) {
  telemetry_ = std::make_unique<TelemetryPublisher>(
      slot, config_.telemetry_cadence_ns);
}

bool Profiler::perf_available() const {
  return perf_ != nullptr && perf_->available();
}

void Profiler::start() {
  if (running_) return;
  running_ = true;
  start_ns_ = now_ns();
  density_.t0_ns = start_ns_;
  rate_last_ns_ = start_ns_;

  if (config_.perf_counters) {
    perf_ = std::make_unique<PerfCounterGroup>();
    if (!perf_->available()) {
      // Degrade loudly-but-once: hardened containers refuse even
      // self-monitoring perf_event_open, and that must not kill the run.
      if (log_ != nullptr) {
        log_->info("profiler_degraded",
                   {{"reason", "perf_event_open unavailable"}});
      }
      if (metrics_ != nullptr) metrics_->gauge_max("profiler_degraded", 1.0);
    }
  }

  cursor_.publish("");
  active_mode_ = sampler_.start(
      config_.sampler_mode, config_.sample_interval_us,
      comm_ != nullptr && comm_->process_isolated());
  publish_telemetry(/*force=*/true, TelemetrySlot::kLive);
}

void Profiler::stop() {
  if (!running_) return;
  sampler_.stop();
  running_ = false;
  flush();
  publish_telemetry(/*force=*/true, TelemetrySlot::kDone);
}

void Profiler::flush() {
  if (metrics_ != nullptr) {
    metrics_->gauge_max("profiler_samples",
                        static_cast<double>(table_.total()));
    metrics_->gauge_max("profiler_dropped_samples",
                        static_cast<double>(table_.dropped()));
    // Per-stage hardware ratios. Gauges, never counters: counters feed the
    // deterministic fingerprint and hardware counts vary run to run.
    for (const auto& [stage, sample] : perf_by_stage_) {
      if (sample.cycles == 0) continue;
      metrics_->gauge_max("perf/" + stage + "/ipc",
                          static_cast<double>(sample.instructions) /
                              static_cast<double>(sample.cycles));
      if (sample.instructions > 0) {
        metrics_->gauge_max("perf/" + stage + "/llc_per_kinst",
                            1000.0 * static_cast<double>(sample.llc_misses) /
                                static_cast<double>(sample.instructions));
      }
    }
  }
  if (timeline_ != nullptr) {
    // Sample density as a counter track: one point per non-empty bucket
    // (single-threaded here — sampling has stopped).
    for (std::size_t i = 0; i < DensitySeries::kMaxBuckets; ++i) {
      const auto n = density_.counts[i].load(std::memory_order_relaxed);
      if (n == 0) continue;
      timeline_->add_counter(
          "sample_density", density_.t0_ns + static_cast<std::int64_t>(i) *
                                                 density_.bucket_ns,
          static_cast<double>(n));
    }
  }
}

std::string Profiler::folded_output() const {
  // Fold iteration instances ("trial12" -> "trial*") so the flamegraph
  // merges per-trial frames, then collapse '/' to ';' per the collapsed
  // stack convention.
  std::map<std::string, std::uint64_t> folded;
  table_.for_each([&](std::string_view path, std::uint64_t count) {
    folded[collapse_stack(fold_scope_path(path))] += count;
  });
  std::string out;
  for (const auto& [stack, count] : folded) {
    out += stack;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  if (table_.dropped() > 0) {
    out += "(dropped) " + std::to_string(table_.dropped()) + '\n';
  }
  return out;
}

void Profiler::on_scope_open(std::string_view path) {
  cursor_.publish(path);
  path_stack_.emplace_back(path);
  if (perf_available()) {
    PerfSample at_open;
    perf_->read(&at_open);
    perf_stack_.push_back(at_open);
  }
  publish_telemetry(/*force=*/false, TelemetrySlot::kLive);
}

void Profiler::on_scope_close(std::string_view path, std::int64_t) {
  // Attached mid-scope: closes may arrive for opens we never saw. Only pop
  // frames we pushed.
  if (!path_stack_.empty() && path_stack_.back() == path) {
    path_stack_.pop_back();
    if (!perf_stack_.empty()) {
      if (perf_available()) {
        PerfSample at_close;
        perf_->read(&at_close);
        // Inclusive per-stage attribution: nested stages also accrue to
        // their ancestors. Fine for the ratio gauges this feeds.
        perf_by_stage_[fold_scope_path(path)] +=
            at_close - perf_stack_.back();
      }
      perf_stack_.pop_back();
    }
  }
  cursor_.publish(path_stack_.empty() ? std::string_view{}
                                      : std::string_view{path_stack_.back()});
  publish_telemetry(/*force=*/false, TelemetrySlot::kLive);
}

TelemetryPublisher::Update Profiler::telemetry_update(std::uint32_t state) {
  TelemetryPublisher::Update u;
  u.state = state;
  u.incarnation =
      comm_ != nullptr ? static_cast<std::uint32_t>(comm_->incarnation()) : 0;
  u.samples = table_.total();
  u.stage = path_stack_.empty() ? std::string_view{}
                                : std::string_view{path_stack_.back()};
  const std::int64_t t = now_ns();
  if (metrics_ != nullptr) {
    const auto it = metrics_->counters().find("points_binned");
    u.points_total = it != metrics_->counters().end() ? it->second : 0;
    // Windowed points/sec: refresh the rate every >=200 ms so it reads as
    // "current throughput", not the whole-run average.
    if (t - rate_last_ns_ >= 200'000'000) {
      rate_value_ = static_cast<double>(u.points_total - rate_last_points_) *
                    1e9 / static_cast<double>(t - rate_last_ns_);
      rate_last_points_ = u.points_total;
      rate_last_ns_ = t;
    }
    u.points_per_sec = rate_value_;
    const double wait_ns =
        histogram_sum_ns(metrics_->histograms(), "recv_wait") +
        histogram_sum_ns(metrics_->histograms(), "barrier_wait");
    const double wall_ns = static_cast<double>(t - start_ns_);
    u.wait_ratio = wall_ns > 0 ? std::min(1.0, wait_ns / wall_ns) : 0.0;
  }
  if (health_ != nullptr) u.anomalies = health_->anomalies();
  // Recovery-ladder accounting (telemetry v2): group-wide respawn/regrow
  // totals from the transport, per-rank latency quantiles from the
  // shrink_to_survivors() histogram. All timing-derived values stay out of
  // the counters (fingerprint discipline).
  if (comm_ != nullptr) {
    u.respawns_total = comm_->respawns_total();
    u.regrow_epochs = comm_->regrow_epochs();
  }
  if (metrics_ != nullptr) {
    const auto hit = metrics_->histograms().find("recovery_latency_ns");
    if (hit != metrics_->histograms().end() && hit->second.count() > 0) {
      u.recovery_p50_ns =
          static_cast<std::int64_t>(hit->second.quantile(0.5));
      u.recovery_p99_ns =
          static_cast<std::int64_t>(hit->second.quantile(0.99));
    }
  }
  return u;
}

void Profiler::publish_telemetry(bool force, std::uint32_t state) {
  // Mailbox-depth snapshots into the black-box ring, at telemetry cadence.
  // Runs on the rank thread (scope boundaries), never from SIGPROF.
  if (flight_ != nullptr && metrics_ != nullptr) {
    const std::int64_t t = now_ns();
    if (force || t - flight_last_ns_ >= config_.telemetry_cadence_ns) {
      flight_last_ns_ = t;
      const auto git = metrics_->gauges().find("mailbox_depth");
      const std::uint64_t depth =
          git != metrics_->gauges().end()
              ? static_cast<std::uint64_t>(git->second)
              : 0;
      flight_->event(flight::EventType::kMailbox, "depth", depth);
    }
  }
  if (telemetry_ == nullptr) return;
  const auto u = telemetry_update(state);
  if (force) {
    telemetry_->publish_now(u);
  } else {
    telemetry_->maybe_publish(u);
  }
}

}  // namespace keybin2::runtime::profile
