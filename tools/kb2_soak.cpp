// kb2_soak: the seeded chaos-soak driver (DESIGN.md §7).
//
// Runs N deterministic chaos schedules (comm/chaos) against the
// process-backed fit with the recovery ladder armed, and holds every run to
// the soak invariant:
//
//   every schedule either converges to the fault-free fit fingerprint
//   (bit-identical model + labels), or ends in a typed, attributed error —
//   never a hang, never a silent wrong answer.
//
// Per schedule: a SIGKILL lands at a seeded protocol operation (sometimes
// the respawned replacement is killed too), a seeded rank's sends are
// delayed, and a third of the seeds additionally damage a checkpoint file
// and assert the typed-restore story (CheckpointError, ".prev" fallback). A
// watchdog thread turns any hang into a loud exit(3) instead of a stuck CI
// job. Outcomes land in BENCH_chaos_soak.json via the bench Reporter.
//
// usage: kb2_soak [--schedules N] [--ranks N] [--points-per-rank N]
//                 [--seed S]       (KB2_CHAOS_SEED overrides the default)
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#ifdef __unix__
#include <unistd.h>
#endif

#include "bench_util.hpp"
#include "comm/chaos/chaos.hpp"
#include "comm/fault.hpp"
#include "comm/proc_comm.hpp"
#include "comm/recovery.hpp"
#include "common/serialize.hpp"
#include "core/checkpoint.hpp"
#include "core/streaming.hpp"
#include "runtime/flight/flight.hpp"
#include "runtime/profile/telemetry.hpp"

namespace {

using namespace keybin2;

struct SoakArgs {
  int schedules = 8;
  int ranks = 4;
  std::size_t points_per_rank = 1200;
  std::uint64_t seed = 0;  // resolved against KB2_CHAOS_SEED below
  std::string telemetry;   // live telemetry segment name (kb2_top attaches)
};

SoakArgs parse(int argc, char** argv) {
  SoakArgs a;
  a.seed = comm::chaos::chaos_seed_from_env(42);
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--schedules")) {
      a.schedules = std::atoi(next("--schedules"));
    } else if (!std::strcmp(argv[i], "--ranks")) {
      a.ranks = std::atoi(next("--ranks"));
    } else if (!std::strcmp(argv[i], "--points-per-rank")) {
      a.points_per_rank =
          std::strtoull(next("--points-per-rank"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--seed")) {
      a.seed = std::strtoull(next("--seed"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--telemetry")) {
      a.telemetry = next("--telemetry");
    } else if (!std::strcmp(argv[i], "--help")) {
      std::printf(
          "usage: kb2_soak [--schedules N] [--ranks N] "
          "[--points-per-rank N] [--seed S] [--telemetry SEGMENT]\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag %s (try --help)\n", argv[i]);
      std::exit(2);
    }
  }
  return a;
}

/// What one schedule produced. "clean"/"recovered" converged to the
/// reference fingerprint; "typed_error:<kind>" ended in an attributed
/// error; anything else fails the gate.
struct Outcome {
  std::string label;
  bool acceptable = false;
  int respawns = 0;
  int regrows = 0;
};

/// The checkpoint leg: damage a real checkpoint the seeded way and require
/// the typed-restore story. Returns an "unacceptable" outcome label on any
/// deviation, empty string when the story held.
std::string run_checkpoint_leg(const comm::chaos::ChaosSchedule& sched,
                               std::size_t points, std::uint64_t seed) {
  const auto mode = static_cast<core::CheckpointCorruption>(
      sched.corrupt_checkpoint);
  const std::string dir = [] {
    const char* t = std::getenv("TMPDIR");
    return std::string(t != nullptr ? t : "/tmp");
  }();
  const std::string path =
      dir + "/kb2_soak_ckpt." + std::to_string(::getpid()) + "." +
      std::to_string(seed);
  const auto cleanup = [&] {
    std::remove(path.c_str());
    std::remove((path + ".prev").c_str());
    std::remove((path + ".tmp").c_str());
  };
  cleanup();

  const auto spec = data::make_paper_mixture(6, 3, seed);
  const auto d = data::sample(spec, points, seed + 1);
  core::Params params;
  params.seed = seed;
  params.bootstrap_trials = 2;
  core::StreamingKeyBin2 engine(d.dims(), params);
  engine.push_batch(d.points);
  (void)engine.refit();

  std::string verdict;
  try {
    // One generation only, then damage it: restore MUST fail typed.
    engine.save_checkpoint(path);
    core::corrupt_checkpoint_file(path, mode, seed);
    bool threw_typed = false;
    try {
      (void)core::StreamingKeyBin2::resume_from(path, params);
    } catch (const core::CheckpointError&) {
      threw_typed = true;
    }
    if (!threw_typed) {
      verdict = "ckpt_corruption_not_detected";
    } else {
      // Two generations, damage the primary: the ".prev" fallback must
      // restore silently and reproduce the engine's model bytes.
      engine.save_checkpoint(path);
      engine.save_checkpoint(path);
      core::corrupt_checkpoint_file(path, mode, seed);
      auto restored = core::StreamingKeyBin2::resume_from(path, params);
      ByteWriter a, b;
      engine.serialize(a);
      restored.serialize(b);
      if (a.bytes().size() != b.bytes().size() ||
          std::memcmp(a.bytes().data(), b.bytes().data(),
                      a.bytes().size()) != 0) {
        verdict = "ckpt_prev_fallback_diverged";
      }
    }
  } catch (const std::exception& e) {
    verdict = std::string("ckpt_unexpected:") + e.what();
  }
  cleanup();
  return verdict;
}

int run_soak(const SoakArgs& args) {
  // Shared fixture: one pinned dataset, sharded across the ranks; the
  // thread-backend fit of the same shards is the fault-free reference
  // fingerprint (backend parity is pinned by test_proc_comm).
  const auto spec = data::make_paper_mixture(6, 3, args.seed);
  const auto d =
      data::sample(spec, args.points_per_rank *
                             static_cast<std::size_t>(args.ranks),
                   args.seed + 1);
  const auto shards = data::shard(d, args.ranks);

  core::Params params;
  params.seed = args.seed;
  params.bootstrap_trials = 2;
  params.comm_timeout_seconds = 30.0;
  params.max_shrink_retries = 3;
  params.recovery.backoff_base_ms = 2.0;
  params.recovery.backoff_cap_ms = 20.0;

  // With --telemetry, every schedule's ranks publish live snapshots into
  // one segment created up front — the chaos soak is exactly where watching
  // incarnations climb in kb2_top is interesting. Created before any fork
  // so children (respawns included) inherit the mapping.
  std::unique_ptr<runtime::profile::TelemetrySegment> tele;
  if (!args.telemetry.empty()) {
    tele = std::make_unique<runtime::profile::TelemetrySegment>(
        args.telemetry, args.ranks, "chaos soak");
    std::printf("telemetry: %s (attach with kb2_top --segment %s)\n",
                tele->name().c_str(), tele->name().c_str());
  }

  // Black-box rings for the whole soak, created pre-fork like the telemetry
  // segment: when the watchdog declares a hang, the rings are the only
  // evidence of where each (possibly SIGKILLed) rank was parked, and the
  // dump happens on the way to _Exit.
  auto fseg = std::make_unique<runtime::flight::FlightSegment>(
      args.ranks, "chaos soak");
  std::mutex deaths_mu;
  std::vector<runtime::flight::FlightDeath> deaths;
  const comm::AbnormalDeathFn on_death = [&](int rank, int incarnation,
                                             const std::string& reason) {
    std::lock_guard lk(deaths_mu);
    deaths.push_back({rank, incarnation, reason});
  };

  const auto body = [&](const comm::chaos::ChaosSchedule* sched) {
    return [&, sched](comm::Communicator& c) -> std::vector<std::byte> {
      std::optional<comm::fault::FaultyComm> faulty;
      comm::Communicator* ep = &c;
      if (sched != nullptr) {
        faulty.emplace(c, sched->fault_for(c.rank(), c.incarnation()));
        ep = &*faulty;
      }
      const auto r = static_cast<std::size_t>(c.rank());
      runtime::Context ctx(*ep, params.seed);
      ctx.enable_flight_recorder(fseg.get());
      if (tele != nullptr) {
        ctx.enable_profiler({}, tele->slot(c.rank()));
      }
      const auto result = core::fit(ctx, shards[r].points, params);
      if (ctx.profiler() != nullptr) ctx.profiler()->stop();
      ByteWriter w;
      result.model.serialize(w);
      w.write_vec(result.labels);
      return w.take();
    };
  };

  std::printf("kb2_soak: %d schedules, %d ranks, %zu points/rank, seed %llu\n",
              args.schedules, args.ranks, args.points_per_rank,
              static_cast<unsigned long long>(args.seed));

  const auto reference =
      comm::run_ranks_collect_bytes(comm::LaunchOptions{}, args.ranks,
                                    body(nullptr));

  // Watchdog: "never a hang" is the whole point. Any schedule stuck past
  // the deadline kills the soak loudly; ctest/CI sees exit 3, not a
  // timeout mystery.
  std::atomic<int> progress{0};
  std::atomic<bool> done{false};
  std::thread watchdog([&] {
    constexpr int kDeadlineSeconds = 300;
    int last = progress.load();
    auto since = std::chrono::steady_clock::now();
    while (!done.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(250));
      const int now_p = progress.load();
      if (now_p != last) {
        last = now_p;
        since = std::chrono::steady_clock::now();
      } else if (std::chrono::steady_clock::now() - since >
                 std::chrono::seconds(kDeadlineSeconds)) {
        std::fprintf(stderr,
                     "kb2_soak: HANG — schedule %d made no progress in %d s\n",
                     last, kDeadlineSeconds);
        // Last act before the hard exit: freeze every ring and dump the
        // flight story so the hang is debuggable after the fact.
        try {
          fseg->freeze();
          std::lock_guard lk(deaths_mu);
          runtime::flight::write_flight_dump("kb2_soak_flight.dump", *fseg,
                                             "soak watchdog expiry", deaths);
          std::fprintf(stderr,
                       "kb2_soak: flight rings dumped to kb2_soak_flight.dump"
                       " (inspect with kb2_postmortem)\n");
        } catch (const std::exception& e) {
          std::fprintf(stderr, "kb2_soak: flight dump failed: %s\n", e.what());
        }
        std::fflush(nullptr);
        std::_Exit(3);
      }
    }
  });

  comm::RecoveryPolicy ladder = params.recovery;
  ladder.max_respawns = 2;  // covers a kill plus a killed replacement

  int failures = 0;
  bench::Series ok_series, respawn_series, regrow_series, typed_series;
  for (int i = 0; i < args.schedules; ++i) {
    progress.store(i + 1);
    const std::uint64_t seed = args.seed + static_cast<std::uint64_t>(i);
    const auto sched = comm::chaos::make_chaos_schedule(seed, args.ranks);

    Outcome out;
    comm::ProcRunResult res;
    try {
      res = comm::proc_run_ranks(args.ranks, /*ring_bytes=*/0, ladder,
                                 body(&sched), on_death);
    } catch (const std::exception& e) {
      out.label = std::string("launch_error:") + e.what();
    }
    out.respawns = res.respawns_total;
    out.regrows = res.regrow_epochs;
    if (out.label.empty()) {
      if (res.first_error != nullptr) {
        try {
          std::rethrow_exception(res.first_error);
        } catch (const comm::FitAbortedError&) {
          out.label = "typed_error:fit_aborted";
          out.acceptable = true;
        } catch (const comm::CommError& e) {
          out.label = std::string("typed_error:") + comm::error_kind(e);
          out.acceptable = true;
        } catch (const Error&) {
          out.label = "typed_error:kb2";
          out.acceptable = true;
        } catch (const std::exception&) {
          // An untyped error is attributable to nothing — gate failure.
          out.label = "untyped_error";
        }
      } else {
        bool match = true;
        for (std::size_t r = 0; r < reference.size(); ++r) {
          if (res.results[r] != reference[r]) match = false;
        }
        if (match) {
          out.label = out.respawns > 0 ? "recovered" : "clean";
          out.acceptable = true;
        } else {
          // Completed without error but off the reference fingerprint: the
          // silent wrong (or silently shrunken) answer the gate exists for.
          out.label = "silent_mismatch";
        }
      }
    }
    // The checkpoint leg piggybacks on the schedule's seed.
    if (out.acceptable && sched.corrupt_checkpoint >= 0) {
      const std::string v = run_checkpoint_leg(sched, 600, seed);
      if (!v.empty()) {
        out.label = v;
        out.acceptable = false;
      }
    }

    if (!out.acceptable) ++failures;
    ok_series.add(out.acceptable ? 1.0 : 0.0);
    respawn_series.add(static_cast<double>(out.respawns));
    regrow_series.add(static_cast<double>(out.regrows));
    typed_series.add(out.label.rfind("typed_error:", 0) == 0 ? 1.0 : 0.0);
    bench::Series one;
    one.add(out.acceptable ? 1.0 : 0.0);
    bench::Reporter::global().add_series(
        "schedule_" + std::to_string(seed) + ":" + out.label, one);
    std::printf("  [%d/%d] %-46s -> %s (respawns=%d regrow=%d)%s\n", i + 1,
                args.schedules, sched.describe().c_str(), out.label.c_str(),
                out.respawns, out.regrows, out.acceptable ? "" : "  ** FAIL");
    std::fflush(stdout);
  }
  done.store(true);
  watchdog.join();

  bench::Reporter::global().add_series("acceptable", ok_series);
  bench::Reporter::global().add_series("respawns", respawn_series);
  bench::Reporter::global().add_series("regrow_epochs", regrow_series);
  bench::Reporter::global().add_series("typed_errors", typed_series);
  bench::Options opt;
  opt.name = "chaos_soak";
  opt.ranks = args.ranks;
  opt.runs = args.schedules;
  opt.seed = args.seed;
  opt.points_per_rank = args.points_per_rank;
  bench::Reporter::global().write(opt);

  if (failures > 0) {
    std::printf("kb2_soak: FAIL — %d/%d schedules violated the soak gate\n",
                failures, args.schedules);
    return 1;
  }
  std::printf("kb2_soak: PASS — %d schedules, zero hangs, zero silent "
              "wrong answers\n",
              args.schedules);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
#ifndef __linux__
  std::printf("kb2_soak: process backend requires Linux; skipping (PASS)\n");
  return 0;
#endif
  return run_soak(parse(argc, argv));
}
