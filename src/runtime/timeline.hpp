// Per-rank timeline capture: what each rank was doing, when, and which
// messages flowed between ranks.
//
// A Timeline records four kinds of events, all stamped with now_ns():
//   * Span    — a closed Tracer scope ("fit/trial0/bin") with start/end.
//   * Flow    — one end of a point-to-point delivery; the hub-unique flow id
//               pairs the send with the matching recv across ranks. The recv
//               end carries the time the rank blocked for the message
//               (wait provenance — what the critical-path analysis uses to
//               decide whether a recv actually gated progress).
//   * Wait    — a blocking interval with no paired remote event (barrier).
//   * Instant — a point event (survivor shrink, checkpoint write, ...).
//
// chrome_trace_json() renders a set of rank timelines as Chrome trace-event
// JSON (the format Perfetto and chrome://tracing load): each rank becomes
// its own process (pid = tid = rank) with "process_name"/"thread_name"
// metadata so Perfetto shows one stably-labelled lane per rank, "X" complete
// events for spans (cat "scope") and waits (cat "wait"), "s"/"f" flow-event
// pairs for message arrows ("f" carries args.wait_us), and "i" instants.
// Timestamps are microseconds relative to the earliest event so traces start
// at t=0. kb2_analyze parses this exact shape back into Timelines.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace keybin2 {
class ByteWriter;
class ByteReader;
}  // namespace keybin2

namespace keybin2::runtime {

class Timeline {
 public:
  struct Span {
    std::string name;  // full scope path, e.g. "fit/trial0/bin"
    std::int64_t start_ns = 0;
    std::int64_t end_ns = 0;
  };

  /// One end of a message delivery. `start` is true on the send side.
  /// `wait_ns` is recv-side provenance: how long the rank blocked before
  /// this message was delivered (0 on the send side, and on recvs that
  /// found the message already in the mailbox).
  struct Flow {
    std::uint64_t id = 0;
    std::int64_t t_ns = 0;
    bool start = false;
    int peer = -1;
    int tag = 0;
    std::uint64_t bytes = 0;
    std::int64_t wait_ns = 0;
  };

  /// A blocking interval with no remote pairing: `t_ns` is when the block
  /// ended, `wait_ns` how long it lasted (barrier waits, today).
  struct Wait {
    std::string kind;  // "barrier"
    std::int64_t t_ns = 0;
    std::int64_t wait_ns = 0;
  };

  struct Instant {
    std::string name;
    std::int64_t t_ns = 0;
  };

  /// A sampled numeric series ("C" counter events in the Chrome trace —
  /// profiler sample density, points/sec).
  struct Counter {
    std::string name;
    std::int64_t t_ns = 0;
    double value = 0.0;
  };

  explicit Timeline(int rank = 0) : rank_(rank) {}

  int rank() const { return rank_; }

  /// Which life of this rank captured the events: 0 for the original
  /// process, bumped each time the recovery ladder respawns the rank. The
  /// Chrome export renders incarnations as separate threads of the rank's
  /// process ("rank 3 (inc 2)"), so a respawned rank's activity is visually
  /// distinct from its predecessor's.
  int incarnation() const { return incarnation_; }
  void set_incarnation(int incarnation) { incarnation_ = incarnation; }

  /// When this (rank, incarnation) started capturing, on the shared
  /// now_ns() clock; 0 = unknown (legacy captures). Merged exports align
  /// lanes on the earliest epoch and drop events stamped before their own
  /// timeline's epoch — residue inherited from a pre-respawn predecessor.
  std::int64_t epoch_ns() const { return epoch_ns_; }
  void set_epoch_ns(std::int64_t epoch_ns) { epoch_ns_ = epoch_ns; }

  void add_span(std::string name, std::int64_t start_ns, std::int64_t end_ns) {
    spans_.push_back(Span{std::move(name), start_ns, end_ns});
  }
  void add_flow(std::uint64_t id, std::int64_t t_ns, bool start, int peer,
                int tag, std::uint64_t bytes, std::int64_t wait_ns = 0) {
    flows_.push_back(Flow{id, t_ns, start, peer, tag, bytes, wait_ns});
  }
  void add_wait(std::string kind, std::int64_t t_ns, std::int64_t wait_ns) {
    waits_.push_back(Wait{std::move(kind), t_ns, wait_ns});
  }
  void add_instant(std::string name, std::int64_t t_ns) {
    instants_.push_back(Instant{std::move(name), t_ns});
  }
  void add_counter(std::string name, std::int64_t t_ns, double value) {
    counters_.push_back(Counter{std::move(name), t_ns, value});
  }

  /// Flatten every event into a byte blob. Under the process-backed
  /// launcher each rank's timeline lives in a different address space, so
  /// this (with deserialize()) is how per-rank timelines reach the parent
  /// for flow pairing and Chrome trace export.
  void serialize(ByteWriter& w) const;
  static Timeline deserialize(ByteReader& r);

  const std::vector<Span>& spans() const { return spans_; }
  const std::vector<Flow>& flows() const { return flows_; }
  const std::vector<Wait>& waits() const { return waits_; }
  const std::vector<Instant>& instants() const { return instants_; }
  const std::vector<Counter>& counters() const { return counters_; }

  bool empty() const {
    return spans_.empty() && flows_.empty() && waits_.empty() &&
           instants_.empty() && counters_.empty();
  }

  void clear() {
    spans_.clear();
    flows_.clear();
    waits_.clear();
    instants_.clear();
    counters_.clear();
  }

 private:
  int rank_;
  int incarnation_ = 0;
  std::int64_t epoch_ns_ = 0;
  std::vector<Span> spans_;
  std::vector<Flow> flows_;
  std::vector<Wait> waits_;
  std::vector<Instant> instants_;
  std::vector<Counter> counters_;
};

/// Render one timeline per rank as a Chrome trace-event JSON document
/// ({"traceEvents": [...]}). Each rank becomes its own process lane
/// (pid = tid = rank) named by process_name/thread_name metadata; flow
/// pairs appear only when both ends were captured.
std::string chrome_trace_json(std::span<const Timeline> ranks);

}  // namespace keybin2::runtime
