#include "stats/ks_test.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "stats/histogram.hpp"

namespace keybin2::stats {
namespace {

TEST(KsUniform, UniformCountsScoreZero) {
  std::vector<double> counts(20, 5.0);
  EXPECT_NEAR(ks_statistic_uniform(counts), 0.0, 1e-12);
}

TEST(KsUniform, PointMassScoresHigh) {
  std::vector<double> counts(20, 0.0);
  counts[0] = 100.0;
  EXPECT_GT(ks_statistic_uniform(counts), 0.9);
}

TEST(KsUniform, EmptyAndZeroMassAreZero) {
  EXPECT_EQ(ks_statistic_uniform({}), 0.0);
  std::vector<double> zeros(5, 0.0);
  EXPECT_EQ(ks_statistic_uniform(zeros), 0.0);
}

TEST(KsTwoSample, IdenticalDistributionsScoreZero) {
  std::vector<double> a{1, 2, 3, 4}, b{2, 4, 6, 8};  // same shape, scaled
  EXPECT_NEAR(ks_statistic(a, b), 0.0, 1e-12);
}

TEST(KsTwoSample, DisjointMassesScoreOne) {
  std::vector<double> a{10, 0, 0, 0}, b{0, 0, 0, 10};
  EXPECT_NEAR(ks_statistic(a, b), 1.0, 1e-12);
}

TEST(KsGaussian, SingleGaussianScoresLow) {
  Histogram h(-5.0, 5.0, 64);
  Rng rng(1);
  for (int i = 0; i < 50000; ++i) h.add(rng.normal());
  const double d =
      ks_statistic_gaussian(h.counts(), h.lo(), h.hi());
  EXPECT_LT(d, 0.05);
}

TEST(KsGaussian, WellSeparatedBimodalScoresHigh) {
  Histogram h(-10.0, 10.0, 64);
  Rng rng(2);
  for (int i = 0; i < 25000; ++i) {
    h.add(rng.normal(-5.0, 0.8));
    h.add(rng.normal(5.0, 0.8));
  }
  const double d = ks_statistic_gaussian(h.counts(), h.lo(), h.hi());
  EXPECT_GT(d, 0.15);
}

TEST(KsGaussian, UniformDataIsDistinguishable) {
  Histogram h(0.0, 1.0, 64);
  Rng rng(3);
  for (int i = 0; i < 50000; ++i) h.add(rng.uniform());
  // A uniform distribution is measurably non-Gaussian but less so than a
  // separated bimodal one.
  const double d = ks_statistic_gaussian(h.counts(), h.lo(), h.hi());
  EXPECT_GT(d, 0.02);
  EXPECT_LT(d, 0.2);
}

TEST(KsGaussian, DegenerateHistogramsScoreZero) {
  std::vector<double> zeros(8, 0.0);
  EXPECT_EQ(ks_statistic_gaussian(zeros, 0.0, 1.0), 0.0);
  std::vector<double> spike(8, 0.0);
  spike[3] = 10.0;  // zero variance after binning
  EXPECT_EQ(ks_statistic_gaussian(spike, 0.0, 1.0), 0.0);
  EXPECT_EQ(ks_statistic_gaussian({}, 0.0, 1.0), 0.0);
}

TEST(KsGaussian, BimodalBeatsUnimodalOrdering) {
  // The collapse criterion only needs the ORDERING to be right.
  Rng rng(4);
  Histogram uni(-4.0, 4.0, 64), bi(-8.0, 8.0, 64);
  for (int i = 0; i < 20000; ++i) {
    uni.add(rng.normal());
    bi.add(i % 2 == 0 ? rng.normal(-4.0, 1.0) : rng.normal(4.0, 1.0));
  }
  EXPECT_GT(ks_statistic_gaussian(bi.counts(), bi.lo(), bi.hi()),
            ks_statistic_gaussian(uni.counts(), uni.lo(), uni.hi()) * 3);
}

TEST(KsPvalue, BoundsAndMonotonicity) {
  EXPECT_DOUBLE_EQ(ks_pvalue(0.0, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(ks_pvalue(0.5, 0.0), 1.0);
  const double p_small = ks_pvalue(0.01, 1000.0);
  const double p_large = ks_pvalue(0.2, 1000.0);
  EXPECT_GT(p_small, p_large);
  EXPECT_GE(p_small, 0.0);
  EXPECT_LE(p_small, 1.0);
  EXPECT_LT(ks_pvalue(0.9, 10000.0), 1e-6);
}

}  // namespace
}  // namespace keybin2::stats
