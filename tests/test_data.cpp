#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <set>

#include "common/error.hpp"
#include "data/dataset.hpp"
#include "data/gaussian_mixture.hpp"
#include "data/io.hpp"
#include "data/partition.hpp"
#include "data/shapes.hpp"

namespace keybin2::data {
namespace {

TEST(GaussianMixture, SampleHasRequestedShape) {
  const auto spec = make_paper_mixture(10, 4, 1);
  const auto d = sample(spec, 500, 2);
  EXPECT_EQ(d.size(), 500u);
  EXPECT_EQ(d.dims(), 10u);
  EXPECT_EQ(d.labels.size(), 500u);
}

TEST(GaussianMixture, AllComponentsGetSamples) {
  const auto spec = make_paper_mixture(5, 4, 3);
  const auto d = sample(spec, 1000, 4);
  std::set<int> seen(d.labels.begin(), d.labels.end());
  EXPECT_EQ(seen.size(), 4u);
  for (int l : seen) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 4);
  }
}

TEST(GaussianMixture, PointsClusterAroundTheirComponentMean) {
  const auto spec = make_paper_mixture(8, 3, 5, /*separation=*/20.0);
  const auto d = sample(spec, 600, 6);
  for (std::size_t i = 0; i < d.size(); ++i) {
    const auto& comp = spec.components[static_cast<std::size_t>(d.labels[i])];
    auto row = d.points.row(i);
    double dist2 = 0.0;
    for (std::size_t j = 0; j < d.dims(); ++j) {
      const double dd = row[j] - comp.mean[j];
      dist2 += dd * dd;
    }
    // Within ~6 sigma in every dim => far below the 20-unit separation.
    EXPECT_LT(std::sqrt(dist2 / static_cast<double>(d.dims())), 6.0);
  }
}

TEST(GaussianMixture, DeterministicInSeed) {
  const auto spec = make_paper_mixture(4, 2, 7);
  const auto a = sample(spec, 100, 8);
  const auto b = sample(spec, 100, 8);
  EXPECT_TRUE(a.points == b.points);
  EXPECT_EQ(a.labels, b.labels);
}

TEST(GaussianMixture, WeightsBiasComponentChoice) {
  GaussianMixtureSpec spec;
  spec.components.push_back({{0.0}, {1.0}, 9.0});
  spec.components.push_back({{10.0}, {1.0}, 1.0});
  const auto d = sample(spec, 10000, 9);
  const auto heavy = static_cast<std::size_t>(
      std::count(d.labels.begin(), d.labels.end(), 0));
  EXPECT_NEAR(static_cast<double>(heavy) / 10000.0, 0.9, 0.02);
}

TEST(GaussianMixture, RedundantDimensionsAreShared) {
  const auto spec = make_redundant_mixture(10, 3, 4, 11);
  for (std::size_t j = 3; j < 10; ++j) {
    for (std::size_t c = 1; c < 4; ++c) {
      EXPECT_EQ(spec.components[c].mean[j], spec.components[0].mean[j]);
      EXPECT_EQ(spec.components[c].stddev[j], spec.components[0].stddev[j]);
    }
  }
  EXPECT_THROW(make_redundant_mixture(5, 6, 2, 1), Error);
}

TEST(Shapes, CorrelatedPairOverlapsAxisProjections) {
  const auto d = correlated_pair(500, 3.0, 13);
  EXPECT_EQ(d.size(), 1000u);
  // Both clusters span overlapping x ranges (that's the point of Figure 1).
  double min1 = 1e9, max0 = -1e9;
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (d.labels[i] == 0) max0 = std::max(max0, d.points(i, 0));
    if (d.labels[i] == 1) min1 = std::min(min1, d.points(i, 0));
  }
  EXPECT_LT(min1, max0);  // projections overlap on x
}

TEST(Shapes, BoxesRespectGeometry) {
  const auto d = boxes(4, 100, 1.0, 5.0, 17);
  EXPECT_EQ(d.size(), 400u);
  EXPECT_THROW(boxes(4, 10, 5.0, 4.0, 17), Error);
}

TEST(Shapes, RingsHaveIncreasingRadii) {
  const auto d = rings(2, 300, 5.0, 0.1, 19);
  for (std::size_t i = 0; i < d.size(); ++i) {
    const double r = std::hypot(d.points(i, 0), d.points(i, 1));
    if (d.labels[i] == 0) EXPECT_NEAR(r, 5.0, 1.0);
    if (d.labels[i] == 1) EXPECT_NEAR(r, 10.0, 1.0);
  }
}

TEST(Shapes, MoonsAreLabelled) {
  const auto d = moons(250, 0.05, 23);
  EXPECT_EQ(d.size(), 500u);
  EXPECT_EQ(std::count(d.labels.begin(), d.labels.end(), 0), 250);
}

TEST(Normalize, MapsToUnitInterval) {
  Matrix m(3, 2, {0.0, 10.0, 5.0, 20.0, 10.0, 30.0});
  const auto bounds = minmax_normalize(m);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(m(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 0.5);
  EXPECT_DOUBLE_EQ(bounds[0].first, 0.0);
  EXPECT_DOUBLE_EQ(bounds[0].second, 10.0);
}

TEST(Normalize, ConstantColumnMapsToHalf) {
  Matrix m(2, 1, {4.0, 4.0});
  minmax_normalize(m);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(m(1, 0), 0.5);
}

TEST(Concat, JoinsPointsAndLabels) {
  Dataset a, b;
  a.points = Matrix(2, 2, {1, 2, 3, 4});
  a.labels = {0, 1};
  b.points = Matrix(1, 2, {5, 6});
  b.labels = {2};
  const auto c = concat({a, b});
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.labels, (std::vector<int>{0, 1, 2}));
}

TEST(Concat, UnlabelledPartDropsLabels) {
  Dataset a, b;
  a.points = Matrix(1, 1, {1.0});
  a.labels = {0};
  b.points = Matrix(1, 1, {2.0});
  const auto c = concat({a, b});
  EXPECT_EQ(c.size(), 2u);
  EXPECT_FALSE(c.labelled());
}

TEST(Partition, BalancedRanges) {
  const auto ranges = partition_rows(10, 3);
  ASSERT_EQ(ranges.size(), 3u);
  EXPECT_EQ(ranges[0].count(), 4u);
  EXPECT_EQ(ranges[1].count(), 3u);
  EXPECT_EQ(ranges[2].count(), 3u);
  EXPECT_EQ(ranges[0].begin, 0u);
  EXPECT_EQ(ranges[2].end, 10u);
}

TEST(Partition, MoreRanksThanRows) {
  const auto ranges = partition_rows(2, 4);
  EXPECT_EQ(ranges[0].count(), 1u);
  EXPECT_EQ(ranges[1].count(), 1u);
  EXPECT_EQ(ranges[2].count(), 0u);
  EXPECT_EQ(ranges[3].count(), 0u);
}

TEST(Partition, ShardReassemblesToOriginal) {
  const auto spec = make_paper_mixture(3, 2, 29);
  const auto d = sample(spec, 101, 30);
  const auto shards = shard(d, 4);
  const auto rejoined = concat(shards);
  EXPECT_TRUE(rejoined.points == d.points);
  EXPECT_EQ(rejoined.labels, d.labels);
}

TEST(Io, CsvRoundtrip) {
  const auto spec = make_paper_mixture(3, 2, 31);
  const auto d = sample(spec, 50, 32);
  const std::string path = "/tmp/kb2_test_roundtrip.csv";
  write_csv(d, path);
  const auto back = read_csv(path);
  EXPECT_EQ(back.size(), d.size());
  EXPECT_EQ(back.dims(), d.dims());
  EXPECT_EQ(back.labels, d.labels);
  for (std::size_t i = 0; i < d.size(); ++i) {
    for (std::size_t j = 0; j < d.dims(); ++j) {
      EXPECT_DOUBLE_EQ(back.points(i, j), d.points(i, j));
    }
  }
  std::remove(path.c_str());
}

TEST(Io, CsvUnlabelledRoundtrip) {
  Dataset d;
  d.points = Matrix(2, 2, {1.5, -2.5, 3.5, 4.5});
  const std::string path = "/tmp/kb2_test_unlabelled.csv";
  write_csv(d, path);
  const auto back = read_csv(path);
  EXPECT_FALSE(back.labelled());
  EXPECT_TRUE(back.points == d.points);
  std::remove(path.c_str());
}

TEST(Io, BinaryRoundtripIsExact) {
  const auto spec = make_paper_mixture(7, 3, 33);
  const auto d = sample(spec, 128, 34);
  const std::string path = "/tmp/kb2_test_roundtrip.bin";
  write_binary(d, path);
  const auto back = read_binary(path);
  EXPECT_TRUE(back.points == d.points);
  EXPECT_EQ(back.labels, d.labels);
  std::remove(path.c_str());
}

TEST(Io, MissingFileThrows) {
  EXPECT_THROW(read_csv("/tmp/kb2_does_not_exist.csv"), Error);
  EXPECT_THROW(read_binary("/tmp/kb2_does_not_exist.bin"), Error);
}

TEST(Io, WrongMagicRejected) {
  const std::string path = "/tmp/kb2_bad_magic.bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    const char junk[32] = "not a dataset";
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
  }
  EXPECT_THROW(read_binary(path), Error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace keybin2::data
