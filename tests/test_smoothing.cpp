#include "stats/smoothing.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace keybin2::stats {
namespace {

TEST(MovingAverage, ConstantSeriesUnchanged) {
  std::vector<double> y(20, 5.0);
  for (double v : moving_average(y, 3)) EXPECT_DOUBLE_EQ(v, 5.0);
}

TEST(MovingAverage, WindowZeroIsIdentity) {
  std::vector<double> y{1.0, 5.0, 2.0};
  EXPECT_EQ(moving_average(y, 0), y);
}

TEST(MovingAverage, CentredWindowAveragesNeighbours) {
  std::vector<double> y{0.0, 3.0, 6.0};
  auto s = moving_average(y, 1);
  EXPECT_DOUBLE_EQ(s[1], 3.0);
  // Edges truncate the window instead of zero-padding.
  EXPECT_DOUBLE_EQ(s[0], 1.5);
  EXPECT_DOUBLE_EQ(s[2], 4.5);
}

TEST(MovingAverage, EmptyInput) {
  EXPECT_TRUE(moving_average({}, 2).empty());
}

TEST(MovingAverage, PreservesTotalOrderOfScale) {
  // Smoothing must not invent mass far above the peak.
  std::vector<double> y{0, 0, 10, 0, 0};
  auto s = moving_average(y, 1);
  for (double v : s) EXPECT_LE(v, 10.0);
}

TEST(SmoothingWindow, FollowsSqrtRule) {
  EXPECT_EQ(smoothing_window(64), 8u);
  EXPECT_EQ(smoothing_window(16), 4u);
  EXPECT_EQ(smoothing_window(1), 1u);
  EXPECT_EQ(smoothing_window(0), 1u);  // floored
}

TEST(LocalSlope, LinearSeriesHasConstantSlope) {
  std::vector<double> y;
  for (int i = 0; i < 30; ++i) y.push_back(2.0 * i + 1.0);
  auto s = local_linear_slope(y, 3);
  for (double v : s) EXPECT_NEAR(v, 2.0, 1e-9);
}

TEST(LocalSlope, FlatSeriesHasZeroSlope) {
  std::vector<double> y(10, 4.0);
  for (double v : local_linear_slope(y, 2)) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(LocalSlope, SignFlipsAtPeak) {
  std::vector<double> y{0, 1, 2, 3, 4, 3, 2, 1, 0};
  auto s = local_linear_slope(y, 2);
  EXPECT_GT(s[1], 0.0);
  EXPECT_LT(s[7], 0.0);
}

TEST(FirstDifference, KnownValues) {
  std::vector<double> y{1.0, 4.0, 2.0};
  auto d = first_difference(y);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d[0], 3.0);
  EXPECT_DOUBLE_EQ(d[1], -2.0);
}

TEST(FirstDifference, ShortInputs) {
  EXPECT_TRUE(first_difference({}).empty());
  EXPECT_TRUE(first_difference(std::vector<double>{1.0}).empty());
}

TEST(SignChanges, DetectsCrossings) {
  std::vector<double> d2{1.0, 2.0, -1.0, -2.0, 3.0};
  auto c = sign_changes(d2);
  EXPECT_EQ(c, (std::vector<std::size_t>{1, 3}));
}

TEST(SignChanges, IgnoresTouchingZero) {
  std::vector<double> d2{1.0, 0.0, 1.0};
  EXPECT_TRUE(sign_changes(d2).empty());
}

TEST(ProminentMaxima, FindsTwoCleanModes) {
  //               0    1    2    3    4    5    6    7    8
  std::vector<double> y{0.0, 5.0, 8.0, 5.0, 1.0, 6.0, 9.0, 6.0, 0.0};
  auto m = prominent_maxima(y, 2.0);
  EXPECT_EQ(m, (std::vector<std::size_t>{2, 6}));
}

TEST(ProminentMaxima, FiltersShallowBump) {
  std::vector<double> y{0.0, 8.0, 7.5, 7.8, 7.0, 2.0, 0.0};
  // The bump at index 3 has prominence 0.3 — below threshold 1.0.
  auto m = prominent_maxima(y, 1.0);
  EXPECT_EQ(m, (std::vector<std::size_t>{1}));
}

TEST(ProminentMaxima, PlateauReportsMidpoint) {
  std::vector<double> y{0.0, 5.0, 5.0, 5.0, 0.0};
  auto m = prominent_maxima(y, 1.0);
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m[0], 2u);
}

TEST(ProminentMaxima, MonotoneSeriesHasEdgeModeOnly) {
  // A density rising to the range boundary is a single mode AT the edge
  // (a cluster hugging the histogram border).
  std::vector<double> y{0, 1, 2, 3, 4};
  EXPECT_EQ(prominent_maxima(y, 0.5), (std::vector<std::size_t>{4}));
}

TEST(ProminentMaxima, EdgeClusterIsAMode) {
  // Mass piled at bin 0, decaying inward: the edge is the mode.
  std::vector<double> y{10.0, 6.0, 2.0, 1.0, 0.5};
  auto m = prominent_maxima(y, 1.0);
  EXPECT_EQ(m, (std::vector<std::size_t>{0}));
}

TEST(ProminentMaxima, TwoEdgeClustersAreTwoModes) {
  std::vector<double> y{9.0, 3.0, 0.5, 0.5, 3.0, 8.0};
  auto m = prominent_maxima(y, 2.0);
  EXPECT_EQ(m, (std::vector<std::size_t>{0, 5}));
}

TEST(ProminentMinima, FindsValleyBetweenModes) {
  std::vector<double> y{0.0, 8.0, 2.0, 9.0, 0.0};
  // The interior valley plus the two edge minima.
  auto m = prominent_minima(y, 3.0);
  EXPECT_EQ(m, (std::vector<std::size_t>{0, 2, 4}));
}

TEST(ProminentMinima, ShallowInteriorDipFiltered) {
  std::vector<double> y{0.0, 8.0, 7.5, 9.0, 0.0};
  // The 0.5-deep interior dip is filtered; edges survive (unconstrained).
  auto m = prominent_minima(y, 1.0);
  EXPECT_EQ(m, (std::vector<std::size_t>{0, 4}));
}

TEST(ProminentExtrema, ConstantAndEmptySeriesHaveNone) {
  EXPECT_TRUE(prominent_maxima(std::vector<double>{2.0, 2.0, 2.0}, 0.1).empty());
  EXPECT_TRUE(prominent_minima(std::vector<double>{}, 0.1).empty());
  EXPECT_TRUE(prominent_maxima(std::vector<double>{1.0}, 0.1).empty());
}

}  // namespace
}  // namespace keybin2::stats
