// SPMD launch harness: run the same function on N simulated ranks.
//
// run_ranks() is the moral equivalent of `mpirun -np N`. Two backends
// implement it:
//
//   Backend::kThread   one thread per rank in this process (ThreadComm).
//   Backend::kProcess  one forked child per rank talking through shared
//                      memory (ProcComm, Linux) — real address-space
//                      isolation, real SIGKILL-able ranks.
//
// The classic run_ranks(n, fn) form stays thread-backed by contract: test
// lambdas routinely mutate captured locals by reference (EXPECT counters,
// result slots), which works across threads and silently cannot work across
// processes (each child writes a copy-on-write snapshot that dies with it).
// Code that wants the process backend opts in explicitly with a
// LaunchOptions, and gets data out the honest way: as returned bytes,
// through run_ranks_collect_bytes().
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/proc_comm.hpp"
#include "comm/recovery.hpp"
#include "comm/thread_comm.hpp"

namespace keybin2::comm {

enum class Backend {
  kThread,
  kProcess,
};

struct LaunchOptions {
  Backend backend = Backend::kThread;

  /// Process backend only: per-(src, dest) shared-memory ring capacity in
  /// bytes; 0 selects the built-in default (1 MiB).
  std::size_t ring_bytes = 0;

  /// Process backend only: respawn rung of the recovery ladder (see
  /// comm/recovery.hpp). The default zero budget keeps the classic
  /// shrink-and-continue behaviour.
  RecoveryPolicy recovery;

  /// Abnormal-death observer (see comm/proc_comm.hpp). Under the process
  /// backend the supervisor invokes it when a rank dies without a complete
  /// report (real SIGKILL); under the thread backend the launcher invokes it
  /// when a rank's function throws, so forensics hooks see the same event on
  /// either backend.
  AbnormalDeathFn on_abnormal_death;

  /// Read the backend from the environment: KB2_BACKEND=proc (or "process")
  /// selects the process backend, "thread" / unset the thread backend; any
  /// other value throws. KB2_PROC_RING_BYTES, when set, overrides
  /// ring_bytes; KB2_MAX_RESPAWNS overrides recovery.max_respawns.
  static LaunchOptions from_env();
};

/// Human-readable backend name ("thread" / "process") for logs and banners.
const char* backend_name(Backend b);

/// Run `fn(comm)` on `n_ranks` simulated ranks; blocks until all complete.
/// Returns the aggregate traffic stats (sum over ranks). Always
/// thread-backed — see the header comment; pass LaunchOptions to choose.
TrafficStats run_ranks(int n_ranks,
                       const std::function<void(Communicator&)>& fn);

/// Backend-selectable launch. Under Backend::kProcess, `fn` executes in a
/// forked child: by-reference captures see a snapshot of the parent and
/// writes to them do NOT propagate back — return data instead
/// (run_ranks_collect_bytes). The first rank exception is rethrown here
/// with its original type on either backend.
TrafficStats run_ranks(const LaunchOptions& options, int n_ranks,
                       const std::function<void(Communicator&)>& fn);

/// Run `fn(comm) -> bytes` on every rank and collect the per-rank blobs,
/// indexed by rank — the one data path that works identically on both
/// backends (process-backed ranks ship their blob to the parent over a
/// pipe). A rank that died without reporting leaves an empty blob; the
/// first rank exception is rethrown unless `first_error` is non-null, in
/// which case it is stored there instead (so callers can inspect partial
/// results from the survivors). `total` (optional) receives the aggregate
/// traffic stats.
std::vector<std::vector<std::byte>> run_ranks_collect_bytes(
    const LaunchOptions& options, int n_ranks,
    const std::function<std::vector<std::byte>(Communicator&)>& fn,
    TrafficStats* total = nullptr, std::exception_ptr* first_error = nullptr);

/// Run `fn(comm) -> T` on `n_ranks` ranks and collect per-rank results,
/// indexed by rank. Thread-backed (results cross by reference).
template <typename T>
std::vector<T> run_ranks_collect(
    int n_ranks, const std::function<T(Communicator&)>& fn) {
  std::vector<T> results(static_cast<std::size_t>(n_ranks));
  run_ranks(n_ranks, [&](Communicator& c) {
    results[static_cast<std::size_t>(c.rank())] = fn(c);
  });
  return results;
}

}  // namespace keybin2::comm
