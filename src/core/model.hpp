// The clustering model KeyBin2 learns (paper §3, steps 4-5).
//
// A model is: a projection matrix, the per-dimension key ranges, the subset
// of projected dimensions that survived KS collapsing, one DimensionPartition
// per kept dimension, and the set of occupied cells. A cell is a tuple of
// per-dimension primary-cluster indices — the paper's "primary clusters ...
// analogous to a space map where keys can be directly assigned to form global
// clusters". Models are small (histogram-scale, never point-scale), cheap to
// broadcast, and can label new points without any other state.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/matrix.hpp"
#include "common/serialize.hpp"
#include "core/keys.hpp"
#include "core/partitioner.hpp"

namespace keybin2::core {

/// An occupied cell of the primary-cluster grid.
struct Cell {
  std::vector<std::uint32_t> coord;  // per kept dimension, primary index
  double density = 0.0;              // number of points observed in the cell
  int label = -1;                    // final cluster label
};

class Model {
 public:
  Model() = default;

  /// Build a model. `cells` densities must be global (already merged across
  /// ranks). Labels are assigned densest-first; cells holding fewer than
  /// `min_cluster_fraction` of `total_points` are absorbed into the nearest
  /// (L1 in primary space) surviving cell. The uniform-depth overload keys
  /// every kept dimension at the same level; the vector overload supports
  /// per-dimension depths (one per kept dimension).
  Model(std::size_t input_dims, Matrix projection, int depth,
        std::vector<int> kept_dims, std::vector<Range> ranges,
        std::vector<DimensionPartition> partitions, std::vector<Cell> cells,
        double score, double total_points, double min_cluster_fraction);
  Model(std::size_t input_dims, Matrix projection, std::vector<int> depths,
        std::vector<int> kept_dims, std::vector<Range> ranges,
        std::vector<DimensionPartition> partitions, std::vector<Cell> cells,
        double score, double total_points, double min_cluster_fraction);

  std::size_t input_dims() const { return input_dims_; }
  bool uses_projection() const { return !projection_.empty(); }
  const Matrix& projection() const { return projection_; }

  /// Key depth of the deepest kept dimension (0 for a dimensionless model).
  int depth() const;

  /// Per-kept-dimension key depths.
  const std::vector<int>& depths() const { return depths_; }

  const std::vector<int>& kept_dims() const { return kept_dims_; }
  const std::vector<Range>& ranges() const { return ranges_; }
  const std::vector<DimensionPartition>& partitions() const {
    return partitions_;
  }
  const std::vector<Cell>& cells() const { return cells_; }
  double score() const { return score_; }

  /// Number of distinct cluster labels (after absorption).
  int n_clusters() const { return n_clusters_; }

  /// Cluster label for a raw input point (projects, keys, and maps through
  /// the primary grid; unseen cells snap to the nearest occupied cell).
  int predict(std::span<const double> x) const;

  /// Labels for every row of `points` (parallel).
  std::vector<int> predict(const Matrix& points) const;

  /// Label for a precomputed cell coordinate (nearest occupied cell when the
  /// exact cell was never observed).
  int label_of_cell(std::span<const std::uint32_t> coord) const;

  void serialize(ByteWriter& w) const;
  static Model deserialize(ByteReader& r);

 private:
  std::size_t input_dims_ = 0;
  Matrix projection_;  // empty => identity (ablation mode)
  std::vector<int> depths_;  // one per kept dimension
  std::vector<int> kept_dims_;
  std::vector<Range> ranges_;  // one per projected dimension
  std::vector<DimensionPartition> partitions_;  // one per kept dimension
  std::vector<Cell> cells_;                     // sorted by density desc
  double score_ = 0.0;
  int n_clusters_ = 0;
};

}  // namespace keybin2::core
