// Table 2: 1280-dimensional points, weak scaling 1 -> 16 ranks (80,000
// points per process in the paper; scaled-down by default).
//
// Shape to reproduce: KeyBin2's time grows mildly as ranks x data double
// (weak scaling near-flat up to communication), parallel-kmeans grows much
// faster, and pdsdbscan is catastrophically slow and collapses everything
// into one cluster at this dimensionality (distance concentration) — the
// paper only managed the 1-process entry before giving up; we do the same
// by default (its neighbour search is O(n^2 d)).
#include <cstdio>

#include "baselines/dbscan.hpp"
#include "baselines/parallel_kmeans.hpp"
#include "bench/bench_util.hpp"
#include "comm/launch.hpp"
#include "common/timer.hpp"
#include "core/keybin2.hpp"
#include "data/gaussian_mixture.hpp"
#include "data/partition.hpp"

namespace {

using namespace keybin2;

constexpr std::size_t kDims = 1280;

void run_scale(int ranks, const bench::Options& opt, bool include_dbscan) {
  bench::MethodSeries keybin2_row, parallel_row, dbscan_row;
  bench::Reporter::global().set_section("ranks=" + std::to_string(ranks));

  for (int run = 0; run < opt.runs; ++run) {
    const std::uint64_t run_seed = opt.seed + 1000 * run;
    const auto spec = data::make_paper_mixture(kDims, 4, run_seed);
    const auto total = opt.points_per_rank * static_cast<std::size_t>(ranks);
    const auto d = data::sample(spec, total, run_seed + 1);
    const auto shards = data::shard(d, ranks);
    const auto ranges = data::partition_rows(d.size(), ranks);

    {
      std::vector<int> combined(d.size());
      core::Params params;
      params.seed = run_seed;
      WallTimer timer;
      comm::run_ranks(ranks, [&](comm::Communicator& c) {
        const auto r = static_cast<std::size_t>(c.rank());
        runtime::Context ctx(c, params.seed);
        // Run 0 is the instrumented run: comm metrics feed the BENCH json's
        // traffic matrix and wait histograms. Uniform across ranks, so the
        // collectives below stay in step.
        if (run == 0) ctx.enable_comm_metrics();
        const auto result = core::fit(ctx, shards[r].points, params);
        std::copy(result.labels.begin(), result.labels.end(),
                  combined.begin() +
                      static_cast<std::ptrdiff_t>(ranges[r].begin));
        if (opt.trace && run == 0) {
          bench::print_trace("keybin2 per-stage, run 0", ctx.trace_report());
        }
        if (run == 0) {
          bench::Reporter::global().capture(
              ctx, "keybin2 ranks=" + std::to_string(ranks));
        }
      });
      keybin2_row.add(bench::score_labels(combined, d.labels),
                      timer.seconds());
    }

    {
      baselines::KMeansParams params;
      params.k = 4;
      params.seed = run_seed;
      std::vector<int> combined(d.size());
      WallTimer timer;
      comm::run_ranks(ranks, [&](comm::Communicator& c) {
        const auto r = static_cast<std::size_t>(c.rank());
        const auto result =
            baselines::parallel_kmeans(c, shards[r].points, params);
        std::copy(result.labels.begin(), result.labels.end(),
                  combined.begin() +
                      static_cast<std::ptrdiff_t>(ranges[r].begin));
      });
      parallel_row.add(bench::score_labels(combined, d.labels),
                       timer.seconds());
    }

    if (include_dbscan) {
      // "Optimal" parameters, as the paper granted: eps from the k-distance
      // heuristic. At 1280 dims distances concentrate and the heuristic eps
      // connects everything — reproducing the paper's 1-cluster outcome.
      const double eps =
          baselines::estimate_eps(d.points, 5, 256, run_seed) * 1.05;
      std::vector<int> combined(d.size());
      WallTimer timer;
      comm::run_ranks(ranks, [&](comm::Communicator& c) {
        const auto r = static_cast<std::size_t>(c.rank());
        const auto result = baselines::pdsdbscan(
            c, shards[r].points, {.eps = eps, .min_points = 5});
        std::copy(result.labels.begin(), result.labels.end(),
                  combined.begin() +
                      static_cast<std::ptrdiff_t>(ranges[r].begin));
      });
      dbscan_row.add(bench::score_labels(combined, d.labels),
                     timer.seconds());
    }
  }

  std::printf("\n== %d process%s (%zu data points) ==\n", ranks,
              ranks == 1 ? "" : "es",
              opt.points_per_rank * static_cast<std::size_t>(ranks));
  bench::print_header();
  keybin2_row.print_row("KeyBin2");
  parallel_row.print_row("parallel-kmeans");
  if (include_dbscan) {
    dbscan_row.print_row("pdsdbscan");
  } else {
    std::printf("%-18s %18s (skipped: O(n^2 d) neighbour search; run rank 1 "
                "or --full to wait it out)\n",
                "pdsdbscan", "--");
  }
}

}  // namespace

int main(int argc, char** argv) {
  auto opt = bench::Options::parse(argc, argv);
  if (!opt.full && opt.points_per_rank > 10000) {
    std::fprintf(stderr, "hint: large --points-per-rank without --full\n");
  }
  std::printf(
      "Table 2 reproduction: %zu-dimensional mixture, weak scaling with %zu "
      "points per rank, %d runs.\n",
      kDims, opt.points_per_rank, opt.runs);
  for (int ranks : {1, 2, 4, 8, 16}) {
    // pdsdbscan only for the 1-process row, like the paper.
    run_scale(ranks, opt, /*include_dbscan=*/ranks == 1);
  }
  bench::Reporter::global().write(opt);
  return 0;
}
