// ThreadComm: an in-process group of ranks backed by threads.
//
// A Hub owns one mailbox per rank; a mailbox is a MessageStash (the
// transport-neutral (source, tag)-keyed FIFO store shared with ProcComm —
// see comm/mailbox.hpp) guarded by a mutex/condvar pair. send() enqueues
// into the destination's stash; recv() blocks on the destination's
// condition variable until a matching message is available. The barrier is
// a classic generation-counting central barrier.
//
// This gives the distributed KeyBin2 driver a faithful stand-in for MPI on a
// single node: real concurrency, real serialization, rank-private memory by
// convention (each rank only touches its own data slices). ProcComm
// (comm/proc_comm.hpp) is the same contract over real OS processes.
//
// Failure model (DESIGN.md §4b): the hub tracks per-rank status — live,
// failed (the rank's function threw), or departed (it returned normally).
// A blocked recv()/barrier() wakes and throws RankFailedError the moment any
// rank fails, naming the caller, the peer, the tag, and every dead rank with
// its reason; with a deadline set (Communicator::set_timeout) the same calls
// throw TimeoutError instead of waiting forever on a silently lost message.
// agree_survivors() is the ULFM-style recovery rendezvous: every live rank
// converges into it (blocked peers are woken with RecoveryError), and once
// all have arrived the hub snapshots the survivor set, purges every mailbox
// (no stale in-flight messages can leak into the retried protocol), and
// acknowledges the failures so the survivors' subsequent traffic is not
// disturbed by the already-handled deaths.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/mailbox.hpp"

namespace keybin2::comm {

class ThreadCommHub;

/// A rank's endpoint inside a ThreadCommHub. Create via ThreadCommHub::comm().
class ThreadComm final : public Communicator {
 public:
  int rank() const override { return rank_; }
  int size() const override;
  void send(int dest, int tag, std::span<const std::byte> data) override;
  std::vector<std::byte> recv(int src, int tag) override;
  void barrier() override;
  TrafficStats stats() const override;

  /// Returns the buffer to this rank's mailbox free list: the next message
  /// pushed at us reuses it instead of allocating.
  void recycle_buffer(std::vector<std::byte>&& buf) override;

  std::vector<int> failed_ranks() const override;
  std::vector<int> agree_survivors() override;

 private:
  friend class ThreadCommHub;
  ThreadComm(ThreadCommHub* hub, int rank) : hub_(hub), rank_(rank) {}

  ThreadCommHub* hub_;
  int rank_;
};

class ThreadCommHub {
 public:
  explicit ThreadCommHub(int size);

  int size() const { return static_cast<int>(mailboxes_.size()); }

  /// The communicator endpoint for `rank`. The hub must outlive it.
  ThreadComm comm(int rank);

  TrafficStats stats(int rank) const;

  /// Record that `rank`'s function threw: blocked and future recv()/barrier()
  /// calls on other ranks throw RankFailedError naming it (and its reason)
  /// instead of waiting on a dead rank, so one failure can never deadlock
  /// the group.
  void mark_failed(int rank, const std::string& reason);

  /// Record that `rank` returned normally and left the group. Departed ranks
  /// no longer count toward the survivor-agreement quorum, and a recv()
  /// blocked on one (after its pending messages drain) throws instead of
  /// hanging.
  void mark_departed(int rank);

  /// Ranks currently marked failed, ascending.
  std::vector<int> failed_ranks() const;

  /// Mark every rank failed (legacy whole-group abort — the moral
  /// equivalent of MPI_Abort). Kept for callers that want all-or-nothing
  /// semantics; per-rank mark_failed() is what run_ranks() uses.
  void poison(const std::string& reason);

 private:
  friend class ThreadComm;

  /// One rank's inbox: the shared stash structure plus this transport's
  /// thread synchronization around it.
  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    MessageStash stash;
  };

  /// What push() reports back for the sender's probe: the assigned flow id,
  /// and (only when requested) the destination mailbox depth after enqueue.
  struct SendInfo {
    std::uint64_t flow_id = 0;
    std::size_t queue_depth = 0;
  };

  /// Enqueue one message. When `probe` is non-null its on_send fires while
  /// the destination mailbox lock is still held, so the sender's timestamp
  /// happens-before any receiver can pop (and stamp) this message — the
  /// send->recv timestamp ordering the trace flow invariants rely on.
  SendInfo push(int src, int dest, int tag, std::span<const std::byte> data,
                CommProbe* probe);
  void recycle(int rank, std::vector<std::byte>&& buf);
  std::vector<std::byte> pop(int self, int src, int tag,
                             double timeout_seconds,
                             std::uint64_t* flow_id_out);
  void barrier_wait(int self, double timeout_seconds);
  std::vector<int> agree_survivors(int self, double timeout_seconds);

  int live_count_locked() const;
  void maybe_finalize_shrink_locked();
  void wake_everyone();
  /// Compose and throw the RankFailedError for an operation `op` on
  /// (self, src, tag); takes state_mu_ itself.
  [[noreturn]] void throw_rank_failed(const char* op, int self, int src,
                                      int tag);

  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<TrafficStats> traffic_;
  mutable std::mutex traffic_mu_;
  std::atomic<std::uint64_t> next_flow_id_{1};

  // Lock order: state_mu_ before any Mailbox::mu; never the reverse.
  mutable std::mutex state_mu_;
  std::unique_ptr<std::atomic<RankState>[]> rank_state_;
  std::vector<std::string> fail_reasons_;
  /// Failed ranks not yet acknowledged by a completed survivor agreement;
  /// nonzero wakes every blocked operation.
  std::atomic<int> unacked_failures_{0};

  // Survivor agreement (guarded by state_mu_; the flag is atomic so mailbox
  // waits and send() can poll it).
  std::atomic<bool> shrink_pending_{false};
  std::condition_variable shrink_cv_;
  int shrink_arrived_ = 0;
  std::uint64_t shrink_generation_ = 0;
  std::vector<int> survivors_;  // snapshot of the last completed agreement

  // Barrier (guarded by state_mu_).
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  std::uint64_t barrier_generation_ = 0;
};

}  // namespace keybin2::comm
