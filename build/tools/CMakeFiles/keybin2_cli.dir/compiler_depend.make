# Empty compiler generated dependencies file for keybin2_cli.
# This may be replaced when dependencies are built.
