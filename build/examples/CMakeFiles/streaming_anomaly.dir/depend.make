# Empty dependencies file for streaming_anomaly.
# This may be replaced when dependencies are built.
