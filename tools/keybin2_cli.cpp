// keybin2 — command-line clustering.
//
//   keybin2 cluster <input.csv> [--out labels.csv] [--algo keybin2|kmeans|
//       xmeans|dbscan] [--k K] [--eps E] [--min-points P] [--trials T]
//       [--seed S] [--timeout SEC] [--retries N] [--trace]
//       [--trace-json out.json] [--log events.jsonl]
//   keybin2 fit-file <input.bin> [--out labels.bin] [--chunk N]
//       [--checkpoint path] [--budget-chunks N] [--trials T] [--seed S]
//       [--trace] [--log events.jsonl]
//   keybin2 generate <output.csv> [--points N] [--dims D] [--k K] [--seed S]
//       [--binary]
//
// `cluster` reads a CSV (header row; an optional trailing `label` column is
// treated as ground truth and scored, never shown to the algorithm) and
// writes the input with a `cluster` column appended. `generate` emits a
// labelled Gaussian mixture for experimentation (`--binary` writes the
// out-of-core binary format instead of CSV).
//
// `--ranks N` (keybin2 only) shards the input across N simulated ranks and
// runs the distributed fit over the selected transport: `--backend thread`
// (default) simulates ranks with threads in this process, `--backend proc`
// forks one child process per rank talking through POSIX shared memory —
// real address-space isolation, the honest version of a cluster job. The
// KB2_BACKEND environment variable supplies the default. Every rank ships
// its labels, traffic counters, and timeline back to the parent as a
// serialized blob, so `--trace`, `--trace-json`, and `--log` produce the
// same merged reports on either backend; `--trace`
// prints the per-stage wall-time / traffic report merged across ranks, plus
// the metrics report (counters, recv/barrier wait latency quantiles, and the
// rank-by-rank comm heatmap). `--trace-json FILE` captures per-rank
// timelines — tracer scopes as spans, each send→recv as a flow-event pair —
// and writes Chrome trace-event JSON loadable in Perfetto or
// chrome://tracing. `--log FILE` appends one JSON line per structured
// runtime event (fit retries, survivor shrinks, checkpoint writes).
// `--timeout` bounds every blocking receive (a dead rank surfaces as a
// TimeoutError instead of a hang) and `--retries` caps how many times the
// fit restarts over the surviving ranks (DESIGN.md §4b).
//
// `fit-file` clusters a binary dataset out of core. With `--checkpoint` the
// histogram pass persists resumable state every few chunks: re-running the
// identical command after a crash continues from the last checkpoint and
// produces the same model bit for bit. `--budget-chunks` pauses the run
// after N chunks (exit 0, checkpoint left behind) for drain/restart drills.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "baselines/dbscan.hpp"
#include "baselines/kmeans.hpp"
#include "baselines/xmeans.hpp"
#include "comm/fault.hpp"
#include "comm/launch.hpp"
#include "common/error.hpp"
#include "common/serialize.hpp"
#include "common/timer.hpp"
#include "core/keybin2.hpp"
#include "core/out_of_core.hpp"
#include "data/gaussian_mixture.hpp"
#include "data/io.hpp"
#include "data/partition.hpp"
#include "runtime/flight/flight.hpp"
#include "runtime/log.hpp"
#include "runtime/profile/telemetry.hpp"
#include "runtime/timeline.hpp"
#include "stats/metrics.hpp"

namespace {

using namespace keybin2;

struct CliArgs {
  std::string command;
  std::string input;
  std::string out;
  std::string algo = "keybin2";
  std::size_t k = 4;
  std::size_t points = 10000;
  std::size_t dims = 16;
  double eps = 0.0;  // 0 = auto (k-distance heuristic)
  std::size_t min_points = 5;
  int trials = 8;
  std::uint64_t seed = 42;
  int ranks = 1;
  bool trace = false;
  std::string trace_json;  // Chrome trace-event output path
  std::string log_path;    // JSONL event-log output path
  bool profile = false;           // continuous profiler (DESIGN.md §8)
  std::string profile_folded;     // collapsed-stack output path
  std::string telemetry;          // live telemetry shm segment name
  bool binary = false;
  double timeout = 0.0;  // comm deadline, 0 = wait forever
  int retries = 2;       // shrink-and-continue restarts
  comm::LaunchOptions launch;  // transport for --ranks > 1 (KB2_BACKEND)
  // Flight recorder (DESIGN.md §10): -1 = auto (on under --backend proc,
  // where ranks can die abruptly and the supervisor can dump; off under
  // thread, where an exception already carries the story), 0/1 = forced.
  int flight = -1;
  std::string flight_dump = "kb2_flight.dump";
  // Chaos flags for the post-mortem smoke (check_tier1.sh): kill one rank
  // when its comm-op count reaches --kill-at-op. Under --backend proc the
  // kill is a real SIGKILL; under thread it degrades to a thrown KilledError.
  int kill_rank = -1;
  std::uint64_t kill_at_op = 0;
  std::string checkpoint;
  std::size_t chunk = 8192;
  std::size_t budget_chunks = 0;
};

[[noreturn]] void usage(int code) {
  std::fprintf(
      stderr,
      "usage:\n"
      "  keybin2 cluster <input.csv> [--out labels.csv] [--algo keybin2|"
      "kmeans|xmeans|dbscan]\n"
      "                  [--k K] [--eps E] [--min-points P] [--trials T] "
      "[--seed S]\n"
      "                  [--ranks N] [--backend thread|proc] [--trace] "
      "[--trace-json out.json]\n"
      "                  [--log events.jsonl] [--timeout SEC] "
      "[--retries N] [--respawns N]\n"
      "                  [--profile] [--profile-folded out.folded] "
      "[--telemetry SEGMENT]\n"
      "                  [--flight-recorder | --no-flight-recorder] "
      "[--flight-dump PATH]\n"
      "  keybin2 fit-file <input.bin> [--out labels.bin] [--chunk N] "
      "[--checkpoint path]\n"
      "                  [--budget-chunks N] [--trials T] [--seed S] "
      "[--trace] [--log events.jsonl]\n"
      "  keybin2 generate <output.csv> [--points N] [--dims D] [--k K] "
      "[--seed S] [--binary]\n");
  std::exit(code);
}

CliArgs parse(int argc, char** argv) {
  if (argc < 3) usage(2);
  CliArgs a;
  a.launch = comm::LaunchOptions::from_env();  // KB2_BACKEND default
  a.command = argv[1];
  a.input = argv[2];
  for (int i = 3; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        usage(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--out")) {
      a.out = next("--out");
    } else if (!std::strcmp(argv[i], "--algo")) {
      a.algo = next("--algo");
    } else if (!std::strcmp(argv[i], "--k")) {
      a.k = std::strtoull(next("--k"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--points")) {
      a.points = std::strtoull(next("--points"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--dims")) {
      a.dims = std::strtoull(next("--dims"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--eps")) {
      a.eps = std::strtod(next("--eps"), nullptr);
    } else if (!std::strcmp(argv[i], "--min-points")) {
      a.min_points = std::strtoull(next("--min-points"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--trials")) {
      a.trials = std::atoi(next("--trials"));
    } else if (!std::strcmp(argv[i], "--seed")) {
      a.seed = std::strtoull(next("--seed"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--ranks")) {
      a.ranks = std::atoi(next("--ranks"));
      if (a.ranks < 1) {
        std::fprintf(stderr, "--ranks must be >= 1\n");
        usage(2);
      }
    } else if (!std::strcmp(argv[i], "--backend")) {
      const std::string b = next("--backend");
      if (b == "thread") {
        a.launch.backend = comm::Backend::kThread;
      } else if (b == "proc" || b == "process") {
        a.launch.backend = comm::Backend::kProcess;
      } else {
        std::fprintf(stderr, "--backend must be 'thread' or 'proc'\n");
        usage(2);
      }
    } else if (!std::strcmp(argv[i], "--trace")) {
      a.trace = true;
    } else if (!std::strcmp(argv[i], "--trace-json")) {
      a.trace_json = next("--trace-json");
    } else if (!std::strcmp(argv[i], "--log")) {
      a.log_path = next("--log");
    } else if (!std::strcmp(argv[i], "--profile")) {
      a.profile = true;
    } else if (!std::strcmp(argv[i], "--profile-folded")) {
      a.profile_folded = next("--profile-folded");
      a.profile = true;
    } else if (!std::strcmp(argv[i], "--telemetry")) {
      a.telemetry = next("--telemetry");
      a.profile = true;  // publishes ride the profiler's scope callbacks
    } else if (!std::strcmp(argv[i], "--binary")) {
      a.binary = true;
    } else if (!std::strcmp(argv[i], "--timeout")) {
      a.timeout = std::strtod(next("--timeout"), nullptr);
    } else if (!std::strcmp(argv[i], "--retries")) {
      a.retries = std::atoi(next("--retries"));
    } else if (!std::strcmp(argv[i], "--respawns")) {
      a.launch.recovery.max_respawns = std::atoi(next("--respawns"));
    } else if (!std::strcmp(argv[i], "--flight-recorder")) {
      a.flight = 1;
    } else if (!std::strcmp(argv[i], "--no-flight-recorder")) {
      a.flight = 0;
    } else if (!std::strcmp(argv[i], "--flight-dump")) {
      a.flight_dump = next("--flight-dump");
      if (a.flight == -1) a.flight = 1;
    } else if (!std::strcmp(argv[i], "--kill-rank")) {
      a.kill_rank = std::atoi(next("--kill-rank"));
    } else if (!std::strcmp(argv[i], "--kill-at-op")) {
      a.kill_at_op = std::strtoull(next("--kill-at-op"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--checkpoint")) {
      a.checkpoint = next("--checkpoint");
    } else if (!std::strcmp(argv[i], "--chunk")) {
      a.chunk = std::strtoull(next("--chunk"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--budget-chunks")) {
      a.budget_chunks = std::strtoull(next("--budget-chunks"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--help")) {
      usage(0);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      usage(2);
    }
  }
  return a;
}

void write_trace_json(const std::string& path,
                      std::span<const runtime::Timeline> timelines) {
  std::ofstream out(path);
  KB2_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  out << runtime::chrome_trace_json(timelines);
  KB2_CHECK_MSG(out.good(), "write to " << path << " failed");
  std::printf("wrote Chrome trace-event JSON to %s\n", path.c_str());
}

/// Open the shared JSONL event sink (all ranks log into one file), or null
/// when --log was not given.
std::shared_ptr<runtime::JsonlFileSink> open_log_sink(const CliArgs& a) {
  if (a.log_path.empty()) return nullptr;
  auto sink = std::make_shared<runtime::JsonlFileSink>(a.log_path);
  KB2_CHECK_MSG(sink->ok(), "cannot open " << a.log_path << " for writing");
  return sink;
}

int run_generate(const CliArgs& a) {
  const auto spec = data::make_paper_mixture(a.dims, a.k, a.seed);
  const auto d = data::sample(spec, a.points, a.seed + 1);
  // Positional arg is the output path here.
  if (a.binary) {
    data::write_binary(d, a.input);
  } else {
    data::write_csv(d, a.input);
  }
  std::printf("wrote %zu labelled points (%zu dims, k=%zu) to %s\n", d.size(),
              d.dims(), a.k, a.input.c_str());
  return 0;
}

int run_fit_file(const CliArgs& a) {
  core::Params params;
  params.seed = a.seed;
  params.bootstrap_trials = a.trials;
  const std::string labels_path =
      a.out.empty() ? a.input + ".labels" : a.out;
  core::CheckpointOptions ckpt;
  ckpt.path = a.checkpoint;
  ckpt.max_chunks = a.budget_chunks;

  runtime::Context ctx(params.seed);
  if (a.trace) ctx.enable_comm_metrics();
  const auto sink = open_log_sink(a);
  if (sink != nullptr) ctx.log().set_sink(sink);

  WallTimer timer;
  const auto result =
      core::fit_from_file(ctx, a.input, labels_path, params, a.chunk, ckpt);
  if (a.trace) {
    std::fputs(ctx.trace_report().format().c_str(), stdout);
    std::fputs(ctx.metrics_report().format().c_str(), stdout);
  }
  if (!result.completed) {
    std::printf("paused after the chunk budget; resumable state saved to "
                "%s (rerun the same command to continue)\n",
                a.checkpoint.c_str());
    return 0;
  }
  std::printf("keybin2 fit-file: %d clusters (model score %.1f) over %llu "
              "points (%zu dims, %zu chunks) in %.3f s\n",
              result.model.n_clusters(), result.model.score(),
              static_cast<unsigned long long>(result.points), result.dims,
              result.chunks, timer.seconds());
  std::printf("wrote labels to %s\n", labels_path.c_str());
  return 0;
}

int run_cluster(const CliArgs& a) {
  auto d = data::read_csv(a.input);
  std::printf("%s: %zu points, %zu dims%s\n", a.input.c_str(), d.size(),
              d.dims(), d.labelled() ? " (ground-truth labels present)" : "");

  std::vector<int> labels;
  WallTimer timer;
  if (a.algo == "keybin2") {
    core::Params params;
    params.seed = a.seed;
    params.bootstrap_trials = a.trials;
    params.comm_timeout_seconds = a.timeout;
    params.max_shrink_retries = a.retries;
    params.recovery = a.launch.recovery;
    double score = 0.0;
    int n_clusters = 0;
    std::string trace_text, metrics_text;
    const auto sink = open_log_sink(a);
    if (a.ranks > 1) {
      // Shard contiguously across simulated ranks; labels concatenate back
      // in input order. Every rank — thread- or process-backed — returns
      // one serialized blob {labels, stats, timeline?, root extras}, the
      // only data path that crosses a process boundary; by-reference
      // capture mutation would silently vanish under --backend proc.
      // Under --backend proc the parent's truncating open above still did
      // useful work (reset the file, surfaced open errors pre-fork), but
      // each child re-opens the path append-mode for itself.
      const bool proc = a.launch.backend == comm::Backend::kProcess;
      const auto shards = data::shard(d, a.ranks);
      // The telemetry segment must exist before the ranks launch: under
      // --backend proc every child (respawns included — they fork from this
      // parent) inherits the MAP_SHARED mapping, so slot pointers captured
      // below stay valid in every address space. Destroyed (and unlinked)
      // when run_cluster returns, which is what ends an attached kb2_top.
      std::unique_ptr<runtime::profile::TelemetrySegment> tele;
      if (!a.telemetry.empty()) {
        tele = std::make_unique<runtime::profile::TelemetrySegment>(
            a.telemetry, a.ranks, "cluster " + a.input);
        std::printf("telemetry: %s (attach with kb2_top --segment %s)\n",
                    tele->name().c_str(), tele->name().c_str());
      }
      // The flight-recorder segment likewise predates every fork, so each
      // rank's black-box ring is readable from this parent even after a
      // SIGKILL. Default on under --backend proc (a dead child can't tell
      // its own story), off under thread unless forced.
      const bool flight_on = a.flight == 1 || (a.flight == -1 && proc);
      std::unique_ptr<runtime::flight::FlightSegment> fseg;
      if (flight_on) {
        fseg = std::make_unique<runtime::flight::FlightSegment>(
            a.ranks, "cluster " + a.input);
      }
      // Abnormal deaths (signal reaps, ladder exhaustion, rank throws) get
      // the death-moment snapshot: freeze every ring, write the cumulative
      // dump, re-arm so a respawned incarnation keeps recording. Under the
      // thread backend rank functions fail concurrently, hence the mutex.
      auto launch = a.launch;
      std::mutex flight_mu;
      std::vector<runtime::flight::FlightDeath> deaths;
      if (fseg != nullptr) {
        launch.on_abnormal_death = [&](int rank, int incarnation,
                                       const std::string& reason) {
          std::lock_guard lk(flight_mu);
          fseg->freeze();
          deaths.push_back({rank, incarnation, reason});
          runtime::flight::write_flight_dump(a.flight_dump, *fseg,
                                             "abnormal rank death", deaths);
          fseg->unfreeze();
          std::fprintf(stderr,
                       "flight: rank %d (inc %d) died: %s — dump written to "
                       "%s (inspect with kb2_postmortem)\n",
                       rank, incarnation, reason.c_str(),
                       a.flight_dump.c_str());
        };
      }
      std::exception_ptr fit_error;
      const auto blobs = comm::run_ranks_collect_bytes(
          launch, a.ranks,
          [&](comm::Communicator& comm) -> std::vector<std::byte> {
            // Chaos injection for the post-mortem smoke: the designated rank
            // dies at its Nth comm op — SIGKILL under proc (FaultyComm
            // escalates when the transport is process-isolated), a thrown
            // KilledError under thread. Either way the flight ring keeps the
            // interrupted op's unmatched begin.
            std::optional<comm::fault::FaultyComm> faulty;
            comm::Communicator* endpoint = &comm;
            // Incarnation 0 only: the respawned replacement must survive, or
            // the kill would repeat until the ladder exhausts its budget.
            if (a.kill_rank == comm.rank() && a.kill_at_op > 0 &&
                comm.incarnation() == 0) {
              comm::fault::FaultSchedule chaos;
              chaos.kill_at_op = a.kill_at_op;
              chaos.hard_kill = true;
              faulty.emplace(comm, chaos);
              endpoint = &*faulty;
            }
            runtime::Context ctx(*endpoint, params.seed);
            if (fseg != nullptr) ctx.enable_flight_recorder(fseg.get());
            if (a.trace) ctx.enable_comm_metrics();
            if (!a.trace_json.empty()) ctx.enable_timeline();
            if (a.profile) {
              ctx.enable_profiler(
                  {}, tele != nullptr ? tele->slot(comm.rank()) : nullptr);
            }
            if (proc && !a.log_path.empty()) {
              // This rank is a forked child: the parent's FILE* is useless
              // here, so append to the (parent-truncated) file directly.
              ctx.log().set_sink(std::make_shared<runtime::JsonlFileSink>(
                  a.log_path, /*append=*/true));
            } else if (sink != nullptr) {
              ctx.log().set_sink(sink);
            }
            auto result = core::fit(
                ctx, shards[static_cast<std::size_t>(comm.rank())].points,
                params);
            std::string folded;
            if (ctx.profiler() != nullptr) {
              // Stop before the report collectives so the profiler's gauges
              // and density counters are flushed into what they gather.
              ctx.profiler()->stop();
              folded = ctx.profiler()->folded_output();
            }
            ByteWriter w;
            w.write_vec(result.labels);
            std::string rank_trace, rank_metrics;
            comm::TrafficStats stats;
            if (a.trace) {
              // Snapshot stats before the trace gather, so the printed
              // totals cover exactly what the per-stage table attributes.
              stats = comm.stats();
              auto report = ctx.trace_report();     // collective
              auto metrics = ctx.metrics_report();  // collective
              if (ctx.is_root()) {
                rank_trace = report.format();
                rank_metrics = metrics.format();
              }
            }
            w.write<comm::TrafficStats>(stats);
            w.write<std::uint8_t>(ctx.is_root() ? 1 : 0);
            if (ctx.is_root()) {
              w.write<double>(result.model.score());
              w.write<std::int32_t>(result.n_clusters());
              w.write_string(rank_trace);
              w.write_string(rank_metrics);
            }
            const auto* tl = ctx.timeline();
            w.write<std::uint8_t>(tl != nullptr ? 1 : 0);
            if (tl != nullptr) tl->serialize(w);
            w.write_string(folded);
            return w.take();
          },
          nullptr, &fit_error);
      if (fit_error != nullptr) std::rethrow_exception(fit_error);

      // Merge the per-rank blobs (rank order = input order for labels).
      std::vector<comm::TrafficStats> rank_stats;
      std::vector<runtime::Timeline> timelines;
      std::map<std::string, std::uint64_t> folded_merged;
      for (const auto& blob : blobs) {
        KB2_CHECK_MSG(!blob.empty(), "a rank returned no result blob");
        ByteReader r(blob);
        const auto part = r.read_vec<int>();
        labels.insert(labels.end(), part.begin(), part.end());
        rank_stats.push_back(r.read<comm::TrafficStats>());
        if (r.read<std::uint8_t>() != 0) {
          score = r.read<double>();
          n_clusters = r.read<std::int32_t>();
          trace_text = r.read_string();
          metrics_text = r.read_string();
        }
        if (r.read<std::uint8_t>() != 0) {
          timelines.push_back(runtime::Timeline::deserialize(r));
        }
        // Sum per-rank collapsed stacks ("stack count" lines) into one
        // job-wide flamegraph input.
        const auto folded = r.read_string();
        for (std::size_t pos = 0; pos < folded.size();) {
          auto eol = folded.find('\n', pos);
          if (eol == std::string::npos) eol = folded.size();
          const std::string_view line(folded.data() + pos, eol - pos);
          const auto space = line.rfind(' ');
          if (space != std::string_view::npos) {
            folded_merged[std::string(line.substr(0, space))] +=
                std::strtoull(line.data() + space + 1, nullptr, 10);
          }
          pos = eol + 1;
        }
        KB2_CHECK_MSG(r.exhausted(), "trailing bytes in a rank result blob");
      }
      std::printf("keybin2: %d clusters (model score %.1f) on %d ranks "
                  "(%s backend) in %.3f s\n",
                  n_clusters, score, a.ranks,
                  comm::backend_name(a.launch.backend), timer.seconds());
      if (a.trace) {
        std::fputs(trace_text.c_str(), stdout);
        comm::TrafficStats totals;
        for (const auto& s : rank_stats) totals += s;
        std::printf("communicator totals: %llu msgs / %llu bytes sent, "
                    "%llu msgs / %llu bytes received\n",
                    static_cast<unsigned long long>(totals.messages_sent),
                    static_cast<unsigned long long>(totals.bytes_sent),
                    static_cast<unsigned long long>(totals.messages_received),
                    static_cast<unsigned long long>(totals.bytes_received));
        std::fputs(metrics_text.c_str(), stdout);
      }
      if (!a.trace_json.empty()) write_trace_json(a.trace_json, timelines);
      if (!a.profile_folded.empty()) {
        std::ofstream f(a.profile_folded);
        KB2_CHECK_MSG(f.good(),
                      "cannot open " << a.profile_folded << " for writing");
        std::uint64_t total = 0;
        for (const auto& [stack, count] : folded_merged) {
          f << stack << ' ' << count << '\n';
          total += count;
        }
        std::printf("wrote %zu collapsed stacks (%llu samples) to %s\n",
                    folded_merged.size(),
                    static_cast<unsigned long long>(total),
                    a.profile_folded.c_str());
      }
    } else {
      std::unique_ptr<runtime::profile::TelemetrySegment> tele;
      if (!a.telemetry.empty()) {
        tele = std::make_unique<runtime::profile::TelemetrySegment>(
            a.telemetry, 1, "cluster " + a.input);
        std::printf("telemetry: %s (attach with kb2_top --segment %s)\n",
                    tele->name().c_str(), tele->name().c_str());
      }
      runtime::Context ctx(params.seed);
      if (a.trace) ctx.enable_comm_metrics();
      if (!a.trace_json.empty()) ctx.enable_timeline();
      if (a.profile) {
        ctx.enable_profiler({},
                            tele != nullptr ? tele->slot(0) : nullptr);
      }
      if (sink != nullptr) ctx.log().set_sink(sink);
      auto result = core::fit(ctx, d.points, params);
      if (ctx.profiler() != nullptr) {
        ctx.profiler()->stop();
        if (!a.profile_folded.empty()) {
          std::ofstream f(a.profile_folded);
          KB2_CHECK_MSG(f.good(),
                        "cannot open " << a.profile_folded << " for writing");
          f << ctx.profiler()->folded_output();
          std::printf("wrote collapsed stacks (%llu samples) to %s\n",
                      static_cast<unsigned long long>(
                          ctx.profiler()->samples()),
                      a.profile_folded.c_str());
        }
      }
      labels = std::move(result.labels);
      score = result.model.score();
      n_clusters = result.n_clusters();
      std::printf("keybin2: %d clusters (model score %.1f) in %.3f s\n",
                  n_clusters, score, timer.seconds());
      if (a.trace) {
        std::fputs(ctx.trace_report().format().c_str(), stdout);
        std::fputs(ctx.metrics_report().format().c_str(), stdout);
      }
      if (!a.trace_json.empty()) {
        write_trace_json(a.trace_json, {ctx.timeline(), 1});
      }
    }
  } else if (a.algo == "kmeans") {
    baselines::KMeansParams params;
    params.k = a.k;
    params.seed = a.seed;
    params.n_init = 10;
    const auto result = baselines::kmeans(d.points, params);
    labels = result.labels;
    std::printf("kmeans: k=%zu, inertia %.1f, %d iterations in %.3f s\n", a.k,
                result.inertia, result.iterations, timer.seconds());
  } else if (a.algo == "xmeans") {
    baselines::XMeansParams params;
    params.k_max = std::max<std::size_t>(a.k, 32);
    params.seed = a.seed;
    const auto result = baselines::xmeans(d.points, params);
    labels = result.labels;
    std::printf("xmeans: found k=%zu (BIC %.1f) in %.3f s\n", result.k,
                result.bic, timer.seconds());
  } else if (a.algo == "dbscan") {
    const double eps =
        a.eps > 0.0 ? a.eps
                    : baselines::estimate_eps(d.points, a.min_points);
    const auto result = baselines::dbscan(
        d.points, {.eps = eps, .min_points = a.min_points});
    labels = result.labels;
    std::printf("dbscan: eps=%.4g, %zu clusters, %zu noise points in "
                "%.3f s\n",
                eps, result.clusters, result.noise_points, timer.seconds());
  } else {
    std::fprintf(stderr, "unknown algorithm '%s'\n", a.algo.c_str());
    usage(2);
  }

  if (d.labelled()) {
    const auto s = stats::pairwise_scores(labels, d.labels);
    std::printf("vs ground truth: precision %.3f, recall %.3f, F1 %.3f\n",
                s.precision, s.recall, s.f1);
  }

  if (!a.out.empty()) {
    data::Dataset out;
    out.points = d.points;
    out.labels = labels;  // written as the `label` column
    data::write_csv(out, a.out);
    std::printf("wrote cluster assignments to %s\n", a.out.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const auto args = parse(argc, argv);
    if (args.command == "cluster") return run_cluster(args);
    if (args.command == "fit-file") return run_fit_file(args);
    if (args.command == "generate") return run_generate(args);
    usage(2);
  } catch (const keybin2::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
