#include "core/streaming.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "core/assess.hpp"
#include "core/cells.hpp"
#include "core/projection.hpp"
#include "stats/ks_test.hpp"

namespace keybin2::core {

StreamingKeyBin2::StreamingKeyBin2(std::size_t input_dims, Params params,
                                   std::size_t reservoir_capacity)
    : input_dims_(input_dims),
      params_(params),
      n_rp_(params.use_projection
                ? (params.n_rp > 0 ? params.n_rp : choose_n_rp(input_dims))
                : static_cast<int>(input_dims)),
      reservoir_capacity_(reservoir_capacity),
      reservoir_(0, input_dims),
      reservoir_rng_(params.seed ^ 0x5eedbeefULL) {
  KB2_CHECK_MSG(input_dims >= 1, "stream schema needs >= 1 dimension");
  KB2_CHECK_MSG(reservoir_capacity >= 16,
                "reservoir capacity " << reservoir_capacity << " too small");
  const int trials = params_.use_projection ? params_.bootstrap_trials : 1;
  Rng seed_stream(params_.seed);
  trials_.resize(static_cast<std::size_t>(trials));
  for (auto& trial : trials_) {
    if (params_.use_projection) {
      trial.projection =
          make_projection_matrix(input_dims, n_rp_, seed_stream.fork_seed());
    }
    trial.anchored.assign(static_cast<std::size_t>(n_rp_), false);
    trial.hists.resize(static_cast<std::size_t>(n_rp_));
    trial.seen_lo.assign(static_cast<std::size_t>(n_rp_),
                         std::numeric_limits<double>::infinity());
    trial.seen_hi.assign(static_cast<std::size_t>(n_rp_),
                         -std::numeric_limits<double>::infinity());
  }
  scratch_.resize(static_cast<std::size_t>(n_rp_));
}

void StreamingKeyBin2::ingest(TrialState& trial,
                              std::span<const double> projected) {
  for (std::size_t j = 0; j < projected.size(); ++j) {
    const double v = projected[j];
    trial.seen_lo[j] = std::min(trial.seen_lo[j], v);
    trial.seen_hi[j] = std::max(trial.seen_hi[j], v);
    if (!trial.anchored[j]) {
      // Anchor the key range on the first observed value; the unit-width
      // start range doubles as needed afterwards.
      const double base = std::floor(v);
      trial.hists[j] = stats::HierarchicalHistogram(base, base + 1.0,
                                                    params_.max_depth);
      trial.anchored[j] = true;
    }
    auto& h = trial.hists[j];
    // Grow the range geometrically until the value fits (amortized O(1)).
    while (v >= h.hi()) h.expand_right();
    while (v < h.lo()) h.expand_left();
    h.add(v);
  }
}

void StreamingKeyBin2::push(std::span<const double> point) {
  KB2_CHECK_MSG(point.size() == input_dims_,
                "point has " << point.size() << " dims, stream expects "
                             << input_dims_);
  for (auto& trial : trials_) {
    if (params_.use_projection) {
      project_point(point, trial.projection, scratch_);
      ingest(trial, scratch_);
    } else {
      ingest(trial, point);
    }
  }

  // Reservoir sampling (algorithm R) over the raw points.
  if (reservoir_.rows() < reservoir_capacity_) {
    reservoir_.append_row(point);
  } else {
    const auto slot = reservoir_rng_.uniform_int(points_seen_ + 1);
    if (slot < reservoir_capacity_) {
      auto row = reservoir_.row(static_cast<std::size_t>(slot));
      std::copy(point.begin(), point.end(), row.begin());
    }
  }
  ++points_seen_;
}

void StreamingKeyBin2::push_batch(const Matrix& batch) {
  for (std::size_t i = 0; i < batch.rows(); ++i) push(batch.row(i));
}

const Model& StreamingKeyBin2::refit(comm::Communicator& comm) {
  const bool is_root = comm.rank() == 0;
  const double total_points = comm.allreduce(
      static_cast<double>(points_seen_), comm::ReduceOp::kSum);
  KB2_CHECK_MSG(total_points > 0.0, "refit before any point was pushed");
  const double local_weight =
      reservoir_.rows() > 0
          ? static_cast<double>(points_seen_) /
                static_cast<double>(reservoir_.rows())
          : 0.0;

  struct Best {
    double score = -1.0;
    int depth = 0;
    Matrix projection;
    std::vector<int> kept_dims;
    std::vector<Range> ranges;
    std::vector<DimensionPartition> partitions;
    std::vector<Cell> cells;
  } best;

  const auto dims = static_cast<std::size_t>(n_rp_);
  for (auto& trial : trials_) {
    // Reconcile per-dimension ranges across ranks onto the tight global
    // envelope of observed values: ranks that saw different data anchored
    // and expanded differently, so each rebins onto the common geometry
    // (placement error bounded by one source-bin width).
    auto lo = comm.allreduce(trial.seen_lo, comm::ReduceOp::kMin);
    auto hi = comm.allreduce(trial.seen_hi, comm::ReduceOp::kMax);

    std::vector<Range> ranges(dims);
    std::vector<stats::HierarchicalHistogram> merged;
    merged.reserve(dims);
    for (std::size_t j = 0; j < dims; ++j) {
      KB2_CHECK_MSG(std::isfinite(lo[j]) && std::isfinite(hi[j]),
                    "dimension " << j << " never received data on any rank");
      ranges[j] = Range{lo[j], hi[j] > lo[j] ? hi[j] : lo[j] + 1.0};
      if (trial.anchored[j]) {
        if (trial.hists[j].lo() != ranges[j].lo ||
            trial.hists[j].hi() != ranges[j].hi) {
          trial.hists[j] =
              stats::rebin_hierarchy(trial.hists[j], ranges[j].lo,
                                     ranges[j].hi);
        }
      } else {
        trial.hists[j] = stats::HierarchicalHistogram(ranges[j].lo,
                                                      ranges[j].hi,
                                                      params_.max_depth);
        trial.anchored[j] = true;
      }
      merged.push_back(trial.hists[j]);
    }

    // Merge histograms across ranks (allreduce of deepest counts).
    {
      std::vector<double> flat;
      for (const auto& h : merged) {
        auto c = h.deepest_counts();
        flat.insert(flat.end(), c.begin(), c.end());
      }
      flat = comm.allreduce(flat, comm::ReduceOp::kSum);
      std::size_t offset = 0;
      for (auto& h : merged) {
        const std::size_t n = h.deepest_counts().size();
        h.set_deepest_counts(std::vector<double>(
            flat.begin() + static_cast<std::ptrdiff_t>(offset),
            flat.begin() + static_cast<std::ptrdiff_t>(offset + n)));
        offset += n;
      }
    }

    // KS collapsing, as in batch fit.
    const int collapse_depth = std::min(params_.max_depth, 6);
    std::vector<int> kept_dims;
    for (std::size_t j = 0; j < dims; ++j) {
      const auto level = merged[j].level(collapse_depth);
      const double ks = stats::ks_statistic_gaussian(level.counts(),
                                                     level.lo(), level.hi());
      if (ks >= params_.collapse_threshold)
        kept_dims.push_back(static_cast<int>(j));
    }
    // No structure under this projection: single-cluster fallback candidate.
    if (kept_dims.empty()) {
      if (is_root && best.score < 0.0) {
        best.score = 0.0;
        best.depth = params_.min_depth;
        best.projection = trial.projection;
        best.ranges = ranges;
      }
      continue;
    }

    // Reservoir keys under this trial's projection and the merged ranges.
    Matrix projected_reservoir =
        params_.use_projection ? project(reservoir_, trial.projection)
                               : reservoir_;
    const auto keys =
        compute_keys(projected_reservoir, ranges, params_.max_depth);

    for (int depth = params_.min_depth; depth <= params_.max_depth; ++depth) {
      std::vector<stats::Histogram> dim_hists;
      std::vector<DimensionPartition> partitions;
      for (int j : kept_dims) {
        auto level = merged[static_cast<std::size_t>(j)].level(depth);
        partitions.push_back(partition(level.counts(), params_));
        dim_hists.push_back(std::move(level));
      }
      const auto local_cells =
          count_cells(keys, kept_dims, partitions, depth, local_weight);
      auto gathered = comm.gather(serialize_cells(local_cells), /*root=*/0);
      if (is_root) {
        CellMap global_cells;
        for (const auto& blob : gathered) merge_cells(global_cells, blob);
        auto cells = to_cell_vector(global_cells);
        const double score =
            histogram_calinski_harabasz(dim_hists, partitions, cells);
        if (score > best.score) {
          best.score = score;
          best.depth = depth;
          best.projection = trial.projection;
          best.kept_dims = kept_dims;
          best.ranges = ranges;
          best.partitions = std::move(partitions);
          best.cells = std::move(cells);
        }
      }
    }
  }

  ByteWriter writer;
  if (is_root) {
    Model model(input_dims_, std::move(best.projection), best.depth,
                std::move(best.kept_dims), std::move(best.ranges),
                std::move(best.partitions), std::move(best.cells), best.score,
                total_points, params_.min_cluster_fraction);
    model.serialize(writer);
  }
  auto bytes = writer.take();
  comm.broadcast(bytes, /*root=*/0);
  ByteReader reader(bytes);
  model_ = Model::deserialize(reader);
  return *model_;
}

const Model& StreamingKeyBin2::refit() {
  comm::SelfComm self;
  return refit(self);
}

const Model& StreamingKeyBin2::model() const {
  KB2_CHECK_MSG(model_.has_value(), "no model yet: call refit() first");
  return *model_;
}

int StreamingKeyBin2::label(std::span<const double> point) const {
  return model().predict(point);
}

}  // namespace keybin2::core
