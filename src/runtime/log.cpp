#include "runtime/log.hpp"

#include "common/timer.hpp"
#include "runtime/json.hpp"

namespace keybin2::runtime {

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "?";
}

std::string LogEvent::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("t_ns").value(std::int64_t(t_ns));
  w.key("rank").value(rank);
  w.key("level").value(log_level_name(level));
  w.key("event").value(name);
  if (!attrs.empty()) {
    w.key("attrs").begin_object();
    for (const auto& [key, value] : attrs) w.key(key).value(value);
    w.end_object();
  }
  w.end_object();
  return w.str();
}

void MemorySink::emit(const LogEvent& event) {
  std::lock_guard lk(mu_);
  events_.push_back(event);
}

std::vector<LogEvent> MemorySink::events() const {
  std::lock_guard lk(mu_);
  return events_;
}

std::vector<LogEvent> MemorySink::events_named(const std::string& name) const {
  std::lock_guard lk(mu_);
  std::vector<LogEvent> out;
  for (const auto& e : events_) {
    if (e.name == name) out.push_back(e);
  }
  return out;
}

JsonlFileSink::JsonlFileSink(const std::string& path, bool append,
                             std::size_t max_bytes)
    : file_(std::fopen(path.c_str(), append ? "a" : "w")), path_(path),
      append_(append), max_bytes_(max_bytes) {
  if (file_ != nullptr && append) {
    // Rotation accounting would need the existing size; rotation is disabled
    // in append mode anyway (see header), so just leave written_ at 0.
    std::fseek(file_, 0, SEEK_END);
  }
}

JsonlFileSink::~JsonlFileSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void JsonlFileSink::emit(const LogEvent& event) {
  if (file_ == nullptr) return;
  const std::string line = event.to_json();
  std::lock_guard lk(mu_);
  if (max_bytes_ > 0 && !append_ && written_ > 0 &&
      written_ + line.size() + 1 > max_bytes_) {
    // Roll over: the current generation becomes <path>.1 (clobbering the
    // previous one) and a fresh <path> takes new lines. rename(2) is atomic,
    // so a tail-reading observer sees either generation, never a torn file.
    std::fclose(file_);
    std::rename(path_.c_str(), (path_ + ".1").c_str());
    file_ = std::fopen(path_.c_str(), "w");
    written_ = 0;
    ++rotations_;
    if (file_ == nullptr) return;
  }
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);  // events must survive the rank dying right after
  written_ += line.size() + 1;
}

void EventLog::event(LogLevel level, std::string_view name,
                     std::vector<std::pair<std::string, std::string>> attrs) {
  if (!enabled(level)) return;
  LogEvent e;
  e.level = level;
  e.t_ns = now_ns();
  e.rank = rank_;
  e.name = std::string(name);
  e.attrs = std::move(attrs);
  sink_->emit(e);
}

}  // namespace keybin2::runtime
