// Property tests for the fused project→key→bin data plane (core/fused.hpp):
// the fused kernels must be BIT-IDENTICAL to the staged reference path at
// every level — individual keys, envelopes, histogram counts, and the final
// fitted model — across seeds, rank counts, and depths. Any FP reassociation
// in the fused inner loops shows up here as an exact-equality failure.
#include "core/fused.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "comm/launch.hpp"
#include "common/rng.hpp"
#include "core/binner.hpp"
#include "core/keybin2.hpp"
#include "core/keys.hpp"
#include "core/projection.hpp"
#include "data/gaussian_mixture.hpp"
#include "data/partition.hpp"

namespace keybin2::core {
namespace {

std::uint64_t label_hash(const std::vector<int>& labels) {
  std::uint64_t h = 14695981039346656037ULL;
  for (int l : labels) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(l));
    h *= 1099511628211ULL;
  }
  return h;
}

// ---- Kernel level: fused_key vs key_of ----

TEST(FusedKey, MatchesKeyOfOnRandomValuesAndEdges) {
  Rng rng(97);
  for (int d_max : {1, 3, 7, 12, 24}) {
    const Range range{-2.5, 7.25};
    const auto scale = make_bin_scale(range, d_max);
    // Random interior + outside values.
    for (int i = 0; i < 20000; ++i) {
      const double x = rng.uniform(range.lo - 2.0, range.hi + 2.0);
      ASSERT_EQ(fused_key(x, scale), key_of(x, range, d_max))
          << "x=" << x << " d_max=" << d_max;
    }
    // Exact edges and near-edges, including the bin boundaries themselves.
    const std::size_t bins = std::size_t{1} << static_cast<unsigned>(d_max);
    std::vector<double> probes{range.lo,
                               range.hi,
                               std::nextafter(range.lo, -1e300),
                               std::nextafter(range.lo, 1e300),
                               std::nextafter(range.hi, -1e300),
                               std::nextafter(range.hi, 1e300),
                               -0.0,
                               0.0,
                               -1e300,
                               1e300};
    for (std::size_t b = 0; b <= bins && b < 4096; ++b) {
      const double edge =
          range.lo + (range.hi - range.lo) * static_cast<double>(b) /
                         static_cast<double>(bins);
      probes.push_back(edge);
      probes.push_back(std::nextafter(edge, -1e300));
      probes.push_back(std::nextafter(edge, 1e300));
    }
    for (double x : probes) {
      ASSERT_EQ(fused_key(x, scale), key_of(x, range, d_max))
          << "x=" << x << " d_max=" << d_max;
    }
  }
}

TEST(FusedKey, SignedZeroRangeEdge) {
  // A range whose lower edge is -0.0: x = +0.0 compares == lo, so both paths
  // must take the "clamp to bin 0" branch.
  const Range range{-0.0, 1.0};
  const auto scale = make_bin_scale(range, 4);
  for (double x : {-0.0, 0.0, 1e-300}) {
    EXPECT_EQ(fused_key(x, scale), key_of(x, range, 4)) << x;
  }
}

// ---- Pass level: envelopes, keys, histograms ----

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      m(i, j) = rng.normal(0.0, 3.0);
    }
  }
  return m;
}

TEST(FusedPasses, ProjectEnvelopeMatchesStagedProjectAndScan) {
  for (std::uint64_t seed : {11ULL, 12ULL, 13ULL}) {
    const auto points = random_matrix(4097, 12, seed);
    const auto projection = make_projection_matrix(12, 5, seed * 31 + 7);

    const auto reference = project(points, projection);
    std::vector<double> ref_lo(5, std::numeric_limits<double>::infinity());
    std::vector<double> ref_hi(5, -std::numeric_limits<double>::infinity());
    for (std::size_t i = 0; i < reference.rows(); ++i) {
      auto row = reference.row(i);
      for (std::size_t j = 0; j < 5; ++j) {
        ref_lo[j] = std::min(ref_lo[j], row[j]);
        ref_hi[j] = std::max(ref_hi[j], row[j]);
      }
    }

    FusedWorkspace ws;
    const auto& fused = fused_project_envelope(points, projection, 5, ws);
    ASSERT_EQ(fused.rows(), reference.rows());
    ASSERT_EQ(fused.cols(), reference.cols());
    for (std::size_t i = 0; i < reference.rows(); ++i) {
      for (std::size_t j = 0; j < 5; ++j) {
        ASSERT_EQ(fused(i, j), reference(i, j)) << i << "," << j;
      }
    }
    EXPECT_EQ(ws.env_lo, ref_lo);
    EXPECT_EQ(ws.env_hi, ref_hi);
  }
}

TEST(FusedPasses, IdentityProjectionIsZeroCopyPassthrough) {
  const auto points = random_matrix(100, 4, 5);
  FusedWorkspace ws;
  const auto& out = fused_project_envelope(points, Matrix(), 4, ws);
  EXPECT_EQ(&out, &points);  // same object, not a copy
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_LE(ws.env_lo[j], ws.env_hi[j]);
  }
}

TEST(FusedPasses, EmptyShardStillReportsInfiniteEnvelopes) {
  // An empty rank must produce dims-sized ±inf envelopes so the group's
  // min/max allreduce has matching lengths on every rank.
  Matrix empty;
  FusedWorkspace ws;
  const auto& out = fused_project_envelope(empty, Matrix(), 3, ws);
  EXPECT_EQ(out.rows(), 0u);
  ASSERT_EQ(ws.env_lo.size(), 3u);
  ASSERT_EQ(ws.env_hi.size(), 3u);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_TRUE(std::isinf(ws.env_lo[j]) && ws.env_lo[j] > 0.0);
    EXPECT_TRUE(std::isinf(ws.env_hi[j]) && ws.env_hi[j] < 0.0);
  }
}

TEST(FusedPasses, KeyBinMatchesComputeKeysAndBuildHistograms) {
  for (int d_max : {3, 7, 10}) {
    for (std::uint64_t seed : {21ULL, 22ULL}) {
      const auto projected = random_matrix(4096 + 33, 4, seed);
      std::vector<Range> ranges;
      for (std::size_t j = 0; j < 4; ++j) {
        double lo = projected(0, j), hi = projected(0, j);
        for (std::size_t i = 1; i < projected.rows(); ++i) {
          lo = std::min(lo, projected(i, j));
          hi = std::max(hi, projected(i, j));
        }
        ranges.push_back(Range{lo, hi});
      }

      const auto ref_keys = compute_keys(projected, ranges, d_max);
      const auto ref_hists = build_histograms(ref_keys, ranges);

      FusedWorkspace ws;
      const auto hists = fused_key_bin(projected, ranges, d_max, ws);

      ASSERT_EQ(ws.keys.points(), ref_keys.points());
      ASSERT_EQ(ws.keys.dims(), ref_keys.dims());
      for (std::size_t i = 0; i < ref_keys.points(); ++i) {
        for (std::size_t j = 0; j < ref_keys.dims(); ++j) {
          ASSERT_EQ(ws.keys.at(i, j), ref_keys.at(i, j)) << i << "," << j;
        }
      }
      ASSERT_EQ(hists.size(), ref_hists.size());
      for (std::size_t j = 0; j < hists.size(); ++j) {
        const auto got = hists[j].deepest_counts();
        const auto want = ref_hists[j].deepest_counts();
        ASSERT_EQ(got.size(), want.size());
        for (std::size_t b = 0; b < got.size(); ++b) {
          ASSERT_EQ(got[b], want[b]) << "dim " << j << " bin " << b;
        }
      }
    }
  }
}

TEST(FusedPasses, WorkspaceReuseAcrossShrinkingInputsStaysCorrect) {
  // Trial workspaces are reused across trials; a later smaller input must not
  // see stale rows/counts from an earlier larger one.
  FusedWorkspace ws;
  for (std::size_t rows : {5000u, 1200u, 7u}) {
    const auto projected = random_matrix(rows, 3, rows);
    std::vector<Range> ranges(3, Range{-12.0, 12.0});
    const auto ref_keys = compute_keys(projected, ranges, 6);
    const auto ref_hists = build_histograms(ref_keys, ranges);
    const auto hists = fused_key_bin(projected, ranges, 6, ws);
    ASSERT_EQ(ws.keys.points(), rows);
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(hists[j].total(), ref_hists[j].total());
      const auto got = hists[j].deepest_counts();
      const auto want = ref_hists[j].deepest_counts();
      for (std::size_t b = 0; b < got.size(); ++b) {
        ASSERT_EQ(got[b], want[b]);
      }
    }
  }
}

// ---- Model level: full fit, fused vs staged, serial and distributed ----

struct FitCase {
  std::uint64_t seed;
  int max_depth;
};

class FusedVsStaged : public ::testing::TestWithParam<FitCase> {};

TEST_P(FusedVsStaged, SerialFitIsBitIdentical) {
  const auto [seed, max_depth] = GetParam();
  const auto spec = data::make_paper_mixture(25, 4, seed);
  const auto d = data::sample(spec, 3000, seed + 1);

  Params fused_params;
  fused_params.max_depth = max_depth;
  fused_params.use_fused_kernels = true;
  Params staged_params = fused_params;
  staged_params.use_fused_kernels = false;

  const auto fused = fit(d.points, fused_params);
  const auto staged = fit(d.points, staged_params);

  EXPECT_EQ(fused.labels, staged.labels);
  EXPECT_EQ(fused.model.score(), staged.model.score());  // bitwise
  EXPECT_EQ(fused.n_clusters(), staged.n_clusters());
  EXPECT_EQ(label_hash(fused.labels), label_hash(staged.labels));
}

INSTANTIATE_TEST_SUITE_P(
    Cases, FusedVsStaged,
    ::testing::Values(FitCase{101, 7}, FitCase{102, 7}, FitCase{103, 4},
                      FitCase{104, 10}, FitCase{105, 3}));

class FusedVsStagedRanks : public ::testing::TestWithParam<int> {};

TEST_P(FusedVsStagedRanks, DistributedFitIsBitIdenticalAcrossPaths) {
  const int ranks = GetParam();
  const auto spec = data::make_paper_mixture(30, 4, 201);
  const auto d = data::sample(spec, 2400, 202);
  const auto shards = data::shard(d, ranks);

  auto run = [&](bool fused_kernels) {
    Params params;
    params.use_fused_kernels = fused_kernels;
    std::vector<int> combined(d.size());
    std::vector<double> score(1);
    comm::run_ranks(ranks, [&](comm::Communicator& c) {
      const auto r = static_cast<std::size_t>(c.rank());
      const auto result = fit(c, shards[r].points, params);
      const auto rows = data::partition_rows(d.size(), ranks);
      std::copy(result.labels.begin(), result.labels.end(),
                combined.begin() +
                    static_cast<std::ptrdiff_t>(rows[r].begin));
      if (c.rank() == 0) score[0] = result.model.score();
    });
    return std::pair{combined, score[0]};
  };

  const auto [fused_labels, fused_score] = run(true);
  const auto [staged_labels, staged_score] = run(false);
  EXPECT_EQ(fused_labels, staged_labels);
  EXPECT_EQ(fused_score, staged_score);  // bitwise
}

INSTANTIATE_TEST_SUITE_P(Ranks, FusedVsStagedRanks,
                         ::testing::Values(1, 2, 8));

TEST(FusedVsStaged, PerDimensionDepthModeIsBitIdentical) {
  const auto spec = data::make_paper_mixture(20, 4, 301);
  const auto d = data::sample(spec, 2000, 302);
  Params params;
  params.per_dimension_depth = true;
  const auto fused = fit(d.points, params);
  params.use_fused_kernels = false;
  const auto staged = fit(d.points, params);
  EXPECT_EQ(fused.labels, staged.labels);
  EXPECT_EQ(fused.model.score(), staged.model.score());
}

TEST(FusedVsStaged, IdentityProjectionAblationIsBitIdentical) {
  const auto spec = data::make_paper_mixture(15, 3, 401);
  const auto d = data::sample(spec, 1500, 402);
  Params params;
  params.use_projection = false;
  const auto fused = fit(d.points, params);
  params.use_fused_kernels = false;
  const auto staged = fit(d.points, params);
  EXPECT_EQ(fused.labels, staged.labels);
  EXPECT_EQ(fused.model.score(), staged.model.score());
}

}  // namespace
}  // namespace keybin2::core
