# Empty dependencies file for test_keys.
# This may be replaced when dependencies are built.
