// MetricsRegistry: per-rank counters, gauges, log-bucketed latency
// histograms, and per-(peer, tag) traffic matrices, with a collective merge
// mirroring the Tracer's reduce_report.
//
// The registry is rank-private (one per Context, written from that rank's
// thread only — same ownership discipline as Tracer). CommMonitor adapts a
// registry (plus an optional Timeline) to the comm::CommProbe interface, so
// attaching it to a communicator populates:
//   * sent/received traffic per (peer, tag)   — the heatmap's raw data,
//   * "recv_wait" / "barrier_wait" histograms — time blocked, in ns,
//   * "mailbox_depth" gauge                   — destination backlog at send.
//
// merge_metrics() gathers every rank's registry at a root into a
// MetricsReport: counters summed, gauges maxed, histograms bucket-summed,
// and the per-rank send matrices laid out as (src, dst, tag) channels. The
// report knows which of its fields are seed-deterministic (message counts,
// bytes, histogram totals) and which are timing-derived (quantiles, gauges);
// deterministic_fingerprint() covers exactly the former, so two runs with
// the same seed produce bit-identical fingerprints.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <tuple>

#include "comm/communicator.hpp"

namespace keybin2::runtime {

class JsonWriter;
class Timeline;
class HealthMonitor;

/// "1.2 KiB"-style rendering shared by trace and metrics tables.
std::string human_bytes(std::uint64_t bytes);

/// Fixed-size histogram over power-of-two nanosecond buckets: bucket i
/// counts observations v with floor(log2(v)) == i (v <= 1ns lands in bucket
/// 0). Recording is O(1) with no allocation; quantiles interpolate on the
/// cumulative bucket counts and clamp to the observed min/max.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 64;

  void record(std::int64_t ns);
  void merge(const LatencyHistogram& o);

  std::uint64_t count() const { return count_; }
  std::int64_t min_ns() const { return count_ == 0 ? 0 : min_ns_; }
  std::int64_t max_ns() const { return max_ns_; }
  double mean_ns() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_ns_) /
                             static_cast<double>(count_);
  }

  /// Value (ns) at quantile q in [0, 1]: p50 = quantile(0.5).
  double quantile(double q) const;

  const std::array<std::uint64_t, kBuckets>& buckets() const {
    return buckets_;
  }

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::int64_t sum_ns_ = 0;
  std::int64_t min_ns_ = 0;
  std::int64_t max_ns_ = 0;
};

/// Message/byte totals of one directed (peer, tag) channel.
struct ChannelTraffic {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

class MetricsRegistry {
 public:
  /// Monotone counter (events, items, retries).
  void add(std::string_view name, std::uint64_t delta = 1);

  /// High-watermark gauge: keeps the maximum observed value.
  void gauge_max(std::string_view name, double value);

  /// Named latency histogram (created on first use).
  LatencyHistogram& histogram(std::string_view name);

  // Comm-side records, fed by CommMonitor.
  void record_send(int peer, int tag, std::size_t bytes,
                   std::size_t queue_depth);
  void record_recv(int peer, int tag, std::size_t bytes, std::int64_t wait_ns);
  void record_barrier(std::int64_t wait_ns);

  const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  const std::map<std::string, double>& gauges() const { return gauges_; }
  const std::map<std::string, LatencyHistogram>& histograms() const {
    return histograms_;
  }
  /// (peer, tag) -> traffic, send and receive sides of this rank.
  const std::map<std::pair<int, int>, ChannelTraffic>& sent() const {
    return sent_;
  }
  const std::map<std::pair<int, int>, ChannelTraffic>& received() const {
    return received_;
  }

  bool empty() const;
  void reset();

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, LatencyHistogram> histograms_;
  std::map<std::pair<int, int>, ChannelTraffic> sent_;
  std::map<std::pair<int, int>, ChannelTraffic> received_;
};

/// Adapter wiring a communicator's probe callbacks into a registry and, when
/// attached, a timeline (flow events). The monitor must outlive its
/// attachment to the communicator.
class CommMonitor final : public comm::CommProbe {
 public:
  explicit CommMonitor(MetricsRegistry* registry) : registry_(registry) {}

  /// Also record send/recv flow endpoints (recv side with its blocked-time
  /// provenance) and barrier waits into `timeline` (nullptr detaches).
  void set_timeline(Timeline* timeline) { timeline_ = timeline; }

  /// Also feed recv/barrier blocked time into `health` (nullptr detaches),
  /// so its wait-ratio baselines see the same waits the histograms do.
  void set_health(HealthMonitor* health) { health_ = health; }

  void on_send(int self, int dest, int tag, std::size_t bytes,
               std::uint64_t flow_id, std::size_t queue_depth) override;
  void on_recv(int self, int src, int tag, std::size_t bytes,
               std::uint64_t flow_id, std::int64_t wait_ns) override;
  void on_barrier(int self, std::int64_t wait_ns) override;

 private:
  MetricsRegistry* registry_;
  Timeline* timeline_ = nullptr;
  HealthMonitor* health_ = nullptr;
};

/// Cross-rank merge of every rank's registry; valid at the merge root.
struct MetricsReport {
  int ranks = 0;
  std::map<std::string, std::uint64_t> counters;       // summed over ranks
  std::map<std::string, double> gauges;                // max over ranks
  std::map<std::string, LatencyHistogram> histograms;  // bucket-summed
  /// Directed channels from the send side: (src, dst, tag) -> traffic.
  std::map<std::tuple<int, int, int>, ChannelTraffic> channels;

  bool empty() const {
    return counters.empty() && histograms.empty() && channels.empty();
  }

  /// rank×rank heatmap of bytes sent (rows = src, cols = dst), followed by
  /// per-tag totals.
  std::string heatmap() const;

  /// Full human-readable report: counters, latency quantiles, heatmap.
  std::string format() const;

  /// Stable text over the seed-deterministic fields ONLY: counters, channel
  /// message/byte totals, and histogram observation counts. Excludes wall
  /// times, quantiles, and gauges, so two runs of a deterministic workload
  /// compare bit-identically.
  std::string deterministic_fingerprint() const;

  /// Emit as JSON: a "deterministic" section (fingerprint fields) and a
  /// "timing" section (quantiles, means, gauges).
  void to_json(JsonWriter& w) const;
};

/// Collective: gather every rank's registry at `root` and merge. Must be
/// entered by all ranks in step; the root returns the merged report, other
/// ranks an empty one. The gather's own traffic is not included.
MetricsReport merge_metrics(const MetricsRegistry& registry,
                            comm::Communicator& comm, int root = 0);

}  // namespace keybin2::runtime
