// Versioned, CRC32-checked checkpoint container (DESIGN.md §4b).
//
// A checkpoint file is
//
//   [u64 magic "KB2CKPT"] [u32 version] [u64 payload_size] [u32 payload_crc]
//   [payload bytes]
//
// written atomically (tmp file + rename) so a crash mid-save never clobbers
// the previous good checkpoint. The payload is an opaque byte blob produced
// by the owning driver (StreamingKeyBin2::serialize, the out-of-core
// driver's resume record); this layer only guards its integrity: truncated
// files, foreign files, version skew, and bit corruption are all rejected
// with a keybin2::Error before a single payload byte is interpreted.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace keybin2::core {

/// "KB2CKPT" packed little-endian into a u64 (high byte zero).
inline constexpr std::uint64_t kCheckpointMagic = 0x0054504b43324b42ULL;

/// Bumped whenever the container layout (not the payload schema) changes.
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// Container header size in bytes: magic + version + payload_size + crc.
inline constexpr std::size_t kCheckpointHeaderBytes = 8 + 4 + 8 + 4;

/// Write `payload` to `path` inside the container above. The bytes land in
/// `path + ".tmp"` first and are renamed into place only after a successful
/// flush, so readers never observe a half-written checkpoint.
void write_checkpoint_file(const std::string& path,
                           std::span<const std::byte> payload);

/// Read and validate a checkpoint written by write_checkpoint_file().
/// Throws keybin2::Error naming the file and the specific defect on bad
/// magic, unsupported version, truncation/size mismatch, or CRC mismatch.
std::vector<std::byte> read_checkpoint_file(const std::string& path);

}  // namespace keybin2::core
