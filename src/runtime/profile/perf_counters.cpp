#include "runtime/profile/perf_counters.hpp"

#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace keybin2::runtime::profile {

#if defined(__linux__)

namespace {

long perf_event_open_syscall(perf_event_attr* attr, pid_t pid, int cpu,
                             int group_fd, unsigned long flags) {
  // glibc ships no wrapper for perf_event_open; raw syscall is the
  // documented interface (perf_event_open(2)).
  return syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags);
}

// Layout of one group read with PERF_FORMAT_GROUP | PERF_FORMAT_ID.
struct GroupReading {
  std::uint64_t nr;
  struct {
    std::uint64_t value;
    std::uint64_t id;
  } values[3];
};

}  // namespace

int PerfCounterGroup::open_event(std::uint32_t type, std::uint64_t config,
                                 int group_fd) {
  perf_event_attr attr = {};
  attr.type = type;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.disabled = (group_fd == -1) ? 1 : 0;  // leader starts the group
  attr.exclude_kernel = 1;  // self-monitoring works under paranoid<=2
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_ID;
  return static_cast<int>(
      perf_event_open_syscall(&attr, 0 /* self */, -1 /* any cpu */, group_fd,
                              PERF_FLAG_FD_CLOEXEC));
}

PerfCounterGroup::PerfCounterGroup() {
  fd_cycles_ = open_event(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, -1);
  if (fd_cycles_ < 0) return;
  fd_instructions_ =
      open_event(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS, fd_cycles_);
  fd_llc_misses_ =
      open_event(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES, fd_cycles_);
  if (fd_instructions_ < 0 || fd_llc_misses_ < 0) {
    // All-or-nothing: a partial group would report misleading ratios.
    close_all();
    return;
  }
  ioctl(fd_cycles_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(fd_cycles_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
  // Some sandboxes let the open succeed but refuse the counters at read
  // time; probe one read so available() is trustworthy.
  PerfSample probe;
  if (!read(&probe)) close_all();
}

PerfCounterGroup::~PerfCounterGroup() { close_all(); }

void PerfCounterGroup::close_all() {
  if (fd_llc_misses_ >= 0) close(fd_llc_misses_);
  if (fd_instructions_ >= 0) close(fd_instructions_);
  if (fd_cycles_ >= 0) close(fd_cycles_);
  fd_cycles_ = fd_instructions_ = fd_llc_misses_ = -1;
}

bool PerfCounterGroup::read(PerfSample* out) const {
  *out = PerfSample{};
  if (fd_cycles_ < 0) return false;
  GroupReading reading = {};
  const ssize_t n = ::read(fd_cycles_, &reading, sizeof(reading));
  if (n < static_cast<ssize_t>(sizeof(std::uint64_t)) || reading.nr != 3) {
    return false;
  }
  // Group members read back in insertion order: cycles, instructions, LLC.
  out->cycles = reading.values[0].value;
  out->instructions = reading.values[1].value;
  out->llc_misses = reading.values[2].value;
  return true;
}

#else  // !__linux__

int PerfCounterGroup::open_event(std::uint32_t, std::uint64_t, int) {
  return -1;
}
PerfCounterGroup::PerfCounterGroup() = default;
PerfCounterGroup::~PerfCounterGroup() = default;
void PerfCounterGroup::close_all() {}
bool PerfCounterGroup::read(PerfSample* out) const {
  *out = PerfSample{};
  return false;
}

#endif

}  // namespace keybin2::runtime::profile
