#include "comm/communicator.hpp"

#include <algorithm>
#include <cstring>

#include "comm/recovery.hpp"
#include "common/crc32.hpp"
#include "common/error.hpp"

namespace keybin2::comm {

namespace {

// Reserved tag bases for collective plumbing (above kUserTagLimit).
constexpr int kTagBcast = Communicator::kUserTagLimit + 1;
constexpr int kTagReduceDouble = Communicator::kUserTagLimit + 2;
constexpr int kTagReduceU64 = Communicator::kUserTagLimit + 3;
constexpr int kTagGather = Communicator::kUserTagLimit + 4;
constexpr int kTagRingAccumulate = Communicator::kUserTagLimit + 5;
constexpr int kTagRingDistribute = Communicator::kUserTagLimit + 6;
constexpr int kTagSubBarrier = Communicator::kUserTagLimit + 7;
constexpr int kTagRsHalve = Communicator::kUserTagLimit + 8;
constexpr int kTagRdDouble = Communicator::kUserTagLimit + 9;
constexpr int kTagRhFold = Communicator::kUserTagLimit + 10;
constexpr int kTagCoreset = Communicator::kUserTagLimit + 11;

constexpr std::size_t kFrameHeaderBytes = sizeof(std::uint32_t);

// Block wire format for the recursive-halving exchanges.
constexpr std::uint8_t kBlockDense = 0;
constexpr std::uint8_t kBlockSparse = 1;

template <typename T>
void apply_op(std::vector<T>& acc, const std::vector<T>& in, ReduceOp op) {
  KB2_CHECK_MSG(acc.size() == in.size(),
                "reduce length mismatch: " << acc.size() << " vs "
                                           << in.size());
  switch (op) {
    case ReduceOp::kSum:
      for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += in[i];
      break;
    case ReduceOp::kMin:
      for (std::size_t i = 0; i < acc.size(); ++i)
        acc[i] = std::min(acc[i], in[i]);
      break;
    case ReduceOp::kMax:
      for (std::size_t i = 0; i < acc.size(); ++i)
        acc[i] = std::max(acc[i], in[i]);
      break;
  }
}

void apply_op_span(std::span<double> acc, std::span<const double> in,
                   ReduceOp op) {
  KB2_CHECK_MSG(acc.size() == in.size(),
                "reduce block length mismatch: " << acc.size() << " vs "
                                                 << in.size());
  switch (op) {
    case ReduceOp::kSum:
      for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += in[i];
      break;
    case ReduceOp::kMin:
      for (std::size_t i = 0; i < acc.size(); ++i)
        acc[i] = std::min(acc[i], in[i]);
      break;
    case ReduceOp::kMax:
      for (std::size_t i = 0; i < acc.size(); ++i)
        acc[i] = std::max(acc[i], in[i]);
      break;
  }
}

template <typename T>
int reduce_tag();
template <>
int reduce_tag<double>() {
  return kTagReduceDouble;
}
template <>
int reduce_tag<std::uint64_t>() {
  return kTagReduceU64;
}

}  // namespace

std::string tag_name(int tag) {
  switch (tag) {
    case kTagBcast: return "bcast";
    case kTagReduceDouble: return "reduce_f64";
    case kTagReduceU64: return "reduce_u64";
    case kTagGather: return "gather";
    case kTagRingAccumulate: return "ring_acc";
    case kTagRingDistribute: return "ring_dist";
    case kTagSubBarrier: return "sub_barrier";
    case kTagRsHalve: return "rs_halve";
    case kTagRdDouble: return "rd_double";
    case kTagRhFold: return "rh_fold";
    case kTagCoreset: return "coreset";
    default:
      if (tag >= 0 && tag < Communicator::kUserTagLimit) {
        return "user:" + std::to_string(tag);
      }
      return "reserved:" + std::to_string(tag);
  }
}

const char* error_kind(const CommError& e) {
  if (dynamic_cast<const FitAbortedError*>(&e) != nullptr) return "fit_aborted";
  if (dynamic_cast<const TimeoutError*>(&e) != nullptr) return "timeout";
  if (dynamic_cast<const RankFailedError*>(&e) != nullptr) return "rank_failed";
  if (dynamic_cast<const RecoveryError*>(&e) != nullptr) return "recovery";
  if (dynamic_cast<const CorruptFrameError*>(&e) != nullptr) {
    return "corrupt_frame";
  }
  return "comm_error";
}

void Communicator::check_rank(int r) const {
  KB2_CHECK_MSG(r >= 0 && r < size(), "rank " << r << " out of group size "
                                              << size());
}

void Communicator::check_user_tag(int tag) const {
  KB2_CHECK_MSG(tag >= 0 && tag < kUserTagLimit, "user tag " << tag
                                                             << " out of range");
}

std::vector<int> Communicator::agree_survivors() {
  const auto failed = failed_ranks();
  std::vector<int> survivors;
  survivors.reserve(static_cast<std::size_t>(size()));
  for (int r = 0; r < size(); ++r) {
    if (std::find(failed.begin(), failed.end(), r) == failed.end()) {
      survivors.push_back(r);
    }
  }
  return survivors;
}

void Communicator::send_frame(int dest, int tag,
                              std::span<const std::byte> payload) {
  // The frame is assembled in a member scratch buffer: send() has copied (or
  // shipped) the bytes by the time it returns, so the allocation is paid
  // once per endpoint, not once per message.
  frame_scratch_.resize(kFrameHeaderBytes + payload.size());
  const std::uint32_t crc = crc32(payload);
  std::memcpy(frame_scratch_.data(), &crc, sizeof(crc));
  if (!payload.empty()) {
    std::memcpy(frame_scratch_.data() + kFrameHeaderBytes, payload.data(),
                payload.size());
  }
  send(dest, tag, frame_scratch_);
}

std::vector<std::byte> Communicator::recv_frame(int src, int tag) {
  auto framed = recv(src, tag);
  if (framed.size() < kFrameHeaderBytes) {
    std::ostringstream os;
    os << "rank " << rank() << " recv(src=" << src << ", tag=" << tag
       << "): frame truncated to " << framed.size()
       << " bytes (missing checksum header)";
    throw CorruptFrameError(os.str());
  }
  std::uint32_t expected = 0;
  std::memcpy(&expected, framed.data(), sizeof(expected));
  const std::span<const std::byte> payload(framed.data() + kFrameHeaderBytes,
                                           framed.size() - kFrameHeaderBytes);
  const std::uint32_t actual = crc32(payload);
  if (actual != expected) {
    std::ostringstream os;
    os << "rank " << rank() << " recv(src=" << src << ", tag=" << tag
       << "): CRC32 mismatch on " << payload.size() << "-byte payload";
    throw CorruptFrameError(os.str());
  }
  framed.erase(framed.begin(),
               framed.begin() + static_cast<std::ptrdiff_t>(kFrameHeaderBytes));
  return framed;
}

void Communicator::broadcast(std::vector<std::byte>& data, int root) {
  check_rank(root);
  const int p = size();
  if (p == 1) return;
  const int me = rank();
  const int rel = (me - root + p) % p;

  // Binomial tree (MPICH-style): receive from the parent, then forward to
  // children at decreasing strides.
  int mask = 1;
  while (mask < p) {
    if (rel & mask) {
      int src = me - mask;
      if (src < 0) src += p;
      data = recv_frame(src, kTagBcast);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (rel + mask < p) {
      int dst = me + mask;
      if (dst >= p) dst -= p;
      send_frame(dst, kTagBcast, data);
    }
    mask >>= 1;
  }
}

template <typename T>
std::vector<T> Communicator::reduce_impl(std::span<const T> local, ReduceOp op,
                                         int root, int base_tag) {
  check_rank(root);
  const int p = size();
  std::vector<T> acc(local.begin(), local.end());
  if (p == 1) return acc;
  const int me = rank();
  const int rel = (me - root + p) % p;

  int mask = 1;
  bool sent = false;
  while (mask < p) {
    if ((rel & mask) == 0) {
      const int src_rel = rel | mask;
      if (src_rel < p) {
        const int src = (src_rel + root) % p;
        auto bytes = recv_frame(src, base_tag);
        ByteReader reader(bytes);
        auto in = reader.template read_vec<T>();
        apply_op(acc, in, op);
        recycle_buffer(std::move(bytes));
      }
    } else {
      const int dst = ((rel & ~mask) + root) % p;
      ByteWriter writer;
      writer.write_vec(acc);
      send_frame(dst, base_tag, writer.bytes());
      sent = true;
      break;
    }
    mask <<= 1;
  }
  if (sent) acc.clear();  // non-root holds no result
  return acc;
}

std::vector<double> Communicator::reduce(std::span<const double> local,
                                         ReduceOp op, int root) {
  return reduce_impl<double>(local, op, root, reduce_tag<double>());
}

std::vector<std::uint64_t> Communicator::reduce(
    std::span<const std::uint64_t> local, ReduceOp op, int root) {
  return reduce_impl<std::uint64_t>(local, op, root,
                                    reduce_tag<std::uint64_t>());
}

template <typename T>
std::vector<T> Communicator::allreduce_impl(std::span<const T> local,
                                            ReduceOp op) {
  auto result = reduce_impl<T>(local, op, /*root=*/0, reduce_tag<T>());
  ByteWriter writer;
  if (rank() == 0) writer.write_vec(result);
  auto bytes = writer.take();
  broadcast(bytes, /*root=*/0);
  if (rank() != 0) {
    ByteReader reader(bytes);
    result = reader.template read_vec<T>();
  }
  return result;
}

std::vector<double> Communicator::allreduce(std::span<const double> local,
                                            ReduceOp op) {
  return allreduce_impl<double>(local, op);
}

std::vector<std::uint64_t> Communicator::allreduce(
    std::span<const std::uint64_t> local, ReduceOp op) {
  return allreduce_impl<std::uint64_t>(local, op);
}

std::vector<double> Communicator::allreduce(std::span<const double> local,
                                            ReduceOp op, AllreduceAlgo algo,
                                            ReduceProfile* profile) {
  if (algo == AllreduceAlgo::kCoreset) {
    return coreset_allreduce(local, coreset::Options{}, profile);
  }
  bool halving = false;
  switch (algo) {
    case AllreduceAlgo::kTree:
    case AllreduceAlgo::kCoreset:  // handled above
      break;
    case AllreduceAlgo::kRecursiveHalving:
      halving = size() > 1;
      break;
    case AllreduceAlgo::kAuto:
      halving = size() > 1 && local.size() >= kRecursiveHalvingMinElements;
      break;
  }
  const std::uint64_t sent_before = stats().bytes_sent;
  std::vector<double> result;
  if (!halving) {
    if (profile) profile->algo = AllreduceAlgo::kTree;
    result = allreduce(local, op);
  } else {
    if (profile) profile->algo = AllreduceAlgo::kRecursiveHalving;
    result = recursive_halving_allreduce(local, op, profile);
  }
  // TrafficStats count framed sizes, so this delta includes the CRC header
  // and sparse-segment prefixes — it reconciles with the CommProbe matrix.
  if (profile) profile->bytes += stats().bytes_sent - sent_before;
  return result;
}

void Communicator::send_reduce_block(int dest, int tag,
                                     std::span<const double> block,
                                     bool sparse_ok, ReduceProfile* profile) {
  // send_frame() has copied the encoding into its own scratch by the time it
  // returns, so one member writer can serve every block of every round.
  ByteWriter& w = block_scratch_;
  w.clear();
  std::size_t nnz = 0;
  if (sparse_ok) {
    for (const double x : block) nnz += (x != 0.0) ? 1 : 0;
  }
  // Sparse iff strictly smaller on the wire: 12 bytes per occupied slot
  // (u32 index + f64 value) plus the nnz prefix, against 8 bytes per slot
  // dense. Only valid for sum — an omitted entry decodes as 0.
  const bool sparse =
      sparse_ok && nnz * 12 + sizeof(std::uint64_t) < block.size() * 8;
  if (sparse) {
    w.write<std::uint8_t>(kBlockSparse);
    w.write<std::uint64_t>(block.size());
    w.write<std::uint64_t>(nnz);
    for (std::size_t i = 0; i < block.size(); ++i) {
      if (block[i] != 0.0) {
        w.write<std::uint32_t>(static_cast<std::uint32_t>(i));
        w.write<double>(block[i]);
      }
    }
    if (profile) ++profile->sparse_blocks;
  } else {
    w.write<std::uint8_t>(kBlockDense);
    w.write_span(block);
    if (profile) ++profile->dense_blocks;
  }
  send_frame(dest, tag, w.bytes());
}

void Communicator::recv_reduce_block(int src, int tag, std::span<double> into,
                                     ReduceOp op, bool combine) {
  auto bytes = recv_frame(src, tag);
  ByteReader r(bytes);
  const auto mode = r.read<std::uint8_t>();
  if (mode == kBlockSparse) {
    const auto n = r.read<std::uint64_t>();
    KB2_CHECK_MSG(n == into.size(), "sparse block length "
                                        << n << " != expected " << into.size());
    const auto nnz = r.read<std::uint64_t>();
    if (!combine) std::fill(into.begin(), into.end(), 0.0);
    for (std::uint64_t k = 0; k < nnz; ++k) {
      const auto idx = r.read<std::uint32_t>();
      const auto val = r.read<double>();
      KB2_CHECK_MSG(idx < into.size(), "sparse index " << idx
                                                       << " out of block size "
                                                       << into.size());
      // combine implies sum (sparse blocks only travel under kSum).
      if (combine) {
        into[idx] += val;
      } else {
        into[idx] = val;
      }
    }
  } else {
    KB2_CHECK_MSG(mode == kBlockDense, "unknown reduce block mode "
                                           << static_cast<int>(mode));
    // Decode into pooled scratch (read_vec would allocate a fresh vector per
    // block); the length prefix is bounds-checked the same way read_vec does.
    const auto n = r.read<std::uint64_t>();
    KB2_CHECK_MSG(n <= r.remaining() / sizeof(double),
                  "dense block length " << n << " exceeds remaining "
                                        << r.remaining() << " bytes");
    KB2_CHECK_MSG(n == into.size(), "dense block length "
                                        << n << " != expected " << into.size());
    recv_block_scratch_.resize(n);
    // Payload layout here is [u8 mode][u64 n][n doubles]; memcpy because the
    // doubles sit at offset 9 and are not suitably aligned for a direct view.
    std::memcpy(recv_block_scratch_.data(),
                bytes.data() + sizeof(std::uint8_t) + sizeof(std::uint64_t),
                n * sizeof(double));
    if (combine) {
      apply_op_span(into, recv_block_scratch_, op);
    } else {
      std::copy(recv_block_scratch_.begin(), recv_block_scratch_.end(),
                into.begin());
    }
  }
  recycle_buffer(std::move(bytes));
}

std::vector<double> Communicator::recursive_halving_allreduce(
    std::span<const double> local, ReduceOp op, ReduceProfile* profile) {
  const int p = size();
  const int me = rank();
  std::vector<double> acc(local.begin(), local.end());
  const bool sparse_ok = (op == ReduceOp::kSum);

  // Largest power of two <= p; the `rem` extra ranks fold into the core
  // first (Rabenseifner's non-power-of-two pre-step) and receive the final
  // vector afterwards.
  int p2 = 1;
  while (p2 * 2 <= p) p2 *= 2;
  const int rem = p - p2;

  int newrank;  // rank inside the power-of-two core, -1 for folded-out ranks
  if (me < 2 * rem) {
    if ((me % 2) == 1) {
      // Odd rank of a fold pair: contribute everything to the even partner,
      // then wait for the fully reduced vector at the end.
      send_reduce_block(me - 1, kTagRhFold, acc, sparse_ok, profile);
      recv_reduce_block(me - 1, kTagRhFold, acc, op, /*combine=*/false);
      return acc;
    }
    recv_reduce_block(me + 1, kTagRhFold, acc, op, /*combine=*/true);
    newrank = me / 2;
  } else {
    newrank = me - rem;
  }
  const auto old_of = [&](int nr) { return nr < rem ? nr * 2 : nr + rem; };

  // Reduce-scatter by recursive halving: at each level partners exchange the
  // half of their current segment they will not own and reduce the half they
  // keep. Both partners share [lo, hi) entering a level (they differ only in
  // the current bit), so the midpoint split is agreed without negotiation.
  std::size_t lo = 0, hi = acc.size();
  std::vector<std::pair<std::size_t, std::size_t>> segments;  // unwind stack
  for (int mask = p2 >> 1; mask >= 1; mask >>= 1) {
    const int partner = old_of(newrank ^ mask);
    const std::size_t mid = lo + (hi - lo) / 2;
    std::size_t keep_lo, keep_hi, send_lo, send_hi;
    if ((newrank & mask) == 0) {
      keep_lo = lo; keep_hi = mid; send_lo = mid; send_hi = hi;
    } else {
      keep_lo = mid; keep_hi = hi; send_lo = lo; send_hi = mid;
    }
    // Send first, then receive: safe because send() is non-blocking on every
    // backend (mailbox enqueue), so the pairwise exchange cannot deadlock.
    send_reduce_block(partner, kTagRsHalve,
                      std::span<const double>(acc.data() + send_lo,
                                              send_hi - send_lo),
                      sparse_ok, profile);
    recv_reduce_block(partner, kTagRsHalve,
                      std::span<double>(acc.data() + keep_lo,
                                        keep_hi - keep_lo),
                      op, /*combine=*/true);
    segments.emplace_back(lo, hi);
    lo = keep_lo;
    hi = keep_hi;
  }

  // Allgather by recursive doubling, unwinding the segment stack: partners
  // exchange their owned halves to reassemble each parent segment. The
  // gathered halves are final values, so they ship dense (re-encoding
  // sparseness would buy nothing once counts are merged, and min/max results
  // must not pass through the sparse path anyway).
  for (int mask = 1; mask < p2; mask <<= 1) {
    const int partner = old_of(newrank ^ mask);
    const auto [parent_lo, parent_hi] = segments.back();
    segments.pop_back();
    const std::size_t other_lo = (lo == parent_lo) ? hi : parent_lo;
    const std::size_t other_hi = (lo == parent_lo) ? parent_hi : lo;
    send_reduce_block(partner, kTagRdDouble,
                      std::span<const double>(acc.data() + lo, hi - lo),
                      /*sparse_ok=*/sparse_ok, profile);
    recv_reduce_block(partner, kTagRdDouble,
                      std::span<double>(acc.data() + other_lo,
                                        other_hi - other_lo),
                      op, /*combine=*/false);
    lo = parent_lo;
    hi = parent_hi;
  }

  // Post-step: folded-out odd ranks get the final vector from their partner.
  if (me < 2 * rem) {
    send_reduce_block(me + 1, kTagRhFold, acc, sparse_ok, profile);
  }
  return acc;
}

std::vector<double> Communicator::coreset_allreduce(
    std::span<const double> local, const coreset::Options& opts,
    ReduceProfile* profile) {
  const std::uint64_t sent_before = stats().bytes_sent;
  if (profile) profile->algo = AllreduceAlgo::kCoreset;
  const int p = size();
  const int me = rank();

  // Every sampling decision forks from (rank, tree level), so the collective
  // is reproducible per opts.seed on any backend and any group size.
  auto sketch =
      coreset::build(local, opts, coreset::fork_seed(opts.seed, me, 0));
  double my_drops = sketch.mass_dropped;  // drops this rank performed

  // Binomial-tree reduce to rank 0: receivers merge the child sketch, then
  // re-compress to the cap before the next level, so no framed message —
  // up the tree or down the broadcast — ever exceeds opts.max_cells entries.
  int mask = 1;
  std::uint64_t level = 1;
  while (mask < p) {
    if ((me & mask) == 0) {
      const int src = me | mask;
      if (src < p) {
        auto bytes = recv_frame(src, kTagCoreset);
        ByteReader r(bytes);
        const auto other = coreset::decode(r);
        coreset::merge(sketch, other);
        recycle_buffer(std::move(bytes));
        const double drops_before = sketch.mass_dropped;
        coreset::compress(sketch, opts,
                          coreset::fork_seed(opts.seed, me, level));
        my_drops += sketch.mass_dropped - drops_before;
      }
    } else {
      const int dst = me & ~mask;
      ByteWriter w;
      coreset::encode(sketch, w);
      send_frame(dst, kTagCoreset, w.bytes());
      if (profile) profile->coreset_cells += sketch.entries();
      break;
    }
    mask <<= 1;
    ++level;
  }

  // Rank 0 holds the merged sketch; fan it out and expand everywhere.
  ByteWriter w;
  if (me == 0) coreset::encode(sketch, w);
  auto bytes = w.take();
  broadcast(bytes, /*root=*/0);
  if (me != 0) {
    ByteReader r(bytes);
    sketch = coreset::decode(r);
  } else if (p > 1 && profile) {
    profile->coreset_cells += sketch.entries();
  }

  if (profile) {
    profile->coreset_mass_dropped += my_drops;
    profile->bytes += stats().bytes_sent - sent_before;
  }
  return coreset::expand(sketch);
}

double Communicator::allreduce(double value, ReduceOp op) {
  return allreduce(std::span<const double>(&value, 1), op)[0];
}

std::uint64_t Communicator::allreduce(std::uint64_t value, ReduceOp op) {
  return allreduce(std::span<const std::uint64_t>(&value, 1), op)[0];
}

std::vector<double> Communicator::ring_allreduce(
    std::span<const double> local) {
  const int p = size();
  std::vector<double> acc(local.begin(), local.end());
  if (p == 1) return acc;
  const int me = rank();
  const int next = (me + 1) % p;
  const int prev = (me - 1 + p) % p;

  // Accumulating pass: 0 starts; each rank adds its share and forwards.
  if (me == 0) {
    ByteWriter w;
    w.write_vec(acc);
    send_frame(next, kTagRingAccumulate, w.bytes());
  } else {
    auto bytes = recv_frame(prev, kTagRingAccumulate);
    ByteReader r(bytes);
    auto partial = r.read_vec<double>();
    apply_op(partial, acc, ReduceOp::kSum);
    acc = std::move(partial);
    recycle_buffer(std::move(bytes));
    if (me != p - 1) {
      ByteWriter w;
      w.write_vec(acc);
      send_frame(next, kTagRingAccumulate, w.bytes());
    }
  }

  // Distribution pass: the last rank holds the total; walk the ring again.
  if (me == p - 1) {
    ByteWriter w;
    w.write_vec(acc);
    send_frame(next, kTagRingDistribute, w.bytes());
  } else {
    auto bytes = recv_frame(prev, kTagRingDistribute);
    ByteReader r(bytes);
    acc = r.read_vec<double>();
    recycle_buffer(std::move(bytes));
    if (next != p - 1) {
      ByteWriter w;
      w.write_vec(acc);
      send_frame(next, kTagRingDistribute, w.bytes());
    }
  }
  return acc;
}

std::vector<std::vector<std::byte>> Communicator::gather(
    std::span<const std::byte> local, int root) {
  check_rank(root);
  const int p = size();
  const int me = rank();
  std::vector<std::vector<std::byte>> out;
  if (me == root) {
    out.resize(p);
    out[static_cast<std::size_t>(me)].assign(local.begin(), local.end());
    for (int r = 0; r < p; ++r) {
      if (r == root) continue;
      out[static_cast<std::size_t>(r)] = recv_frame(r, kTagGather);
    }
  } else {
    send_frame(root, kTagGather, local);
  }
  return out;
}

std::vector<std::vector<std::byte>> Communicator::allgather(
    std::span<const std::byte> local) {
  auto gathered = gather(local, /*root=*/0);
  ByteWriter writer;
  if (rank() == 0) {
    writer.write<std::uint64_t>(gathered.size());
    for (const auto& blob : gathered) {
      writer.write<std::uint64_t>(blob.size());
      for (std::byte b : blob) writer.write(b);
    }
  }
  auto bytes = writer.take();
  broadcast(bytes, /*root=*/0);
  if (rank() != 0) {
    ByteReader reader(bytes);
    const auto n = reader.read<std::uint64_t>();
    gathered.resize(n);
    for (auto& blob : gathered) {
      const auto len = reader.read<std::uint64_t>();
      blob.resize(len);
      for (auto& b : blob) b = reader.read<std::byte>();
    }
  }
  return gathered;
}

void Communicator::send_doubles(int dest, int tag, std::span<const double> v) {
  check_user_tag(tag);
  ByteWriter writer;
  writer.write_span(v);
  send_frame(dest, tag, writer.bytes());
}

std::vector<double> Communicator::recv_doubles(int src, int tag) {
  check_user_tag(tag);
  auto bytes = recv_frame(src, tag);
  ByteReader reader(bytes);
  return reader.read_vec<double>();
}

// ---- SelfComm ----

void SelfComm::send(int dest, int tag, std::span<const std::byte> data) {
  KB2_CHECK_MSG(dest == 0, "SelfComm can only send to rank 0");
  const std::uint64_t flow = next_flow_id_++;
  queue_.push_back(
      Queued{tag, flow, std::vector<std::byte>(data.begin(), data.end())});
  ++stats_.messages_sent;
  stats_.bytes_sent += data.size();
  if (probe()) {
    probe()->on_send(/*self=*/0, dest, tag, data.size(), flow, queue_.size());
  }
}

std::vector<std::byte> SelfComm::recv(int src, int tag) {
  KB2_CHECK_MSG(src == 0, "SelfComm can only receive from rank 0");
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->tag == tag) {
      auto data = std::move(it->bytes);
      const std::uint64_t flow = it->flow_id;
      queue_.erase(it);
      ++stats_.messages_received;
      stats_.bytes_received += data.size();
      if (probe()) {
        // Loopback delivery never blocks: the message was already queued.
        probe()->on_recv(/*self=*/0, src, tag, data.size(), flow,
                         /*wait_ns=*/0);
      }
      return data;
    }
  }
  // No peer exists, so a missing message can never arrive: the deadline —
  // whatever it is — has effectively already expired.
  throw TimeoutError(
      "rank 0 recv(src=0, tag=" + std::to_string(tag) +
          ") timed out immediately: SelfComm has no queued message and no "
          "peer can ever send one",
      /*self=*/0, src, tag, /*elapsed_seconds=*/0.0);
}

// ---- SubgroupComm ----

SubgroupComm::SubgroupComm(Communicator& parent, std::vector<int> members)
    : parent_(&parent), members_(std::move(members)) {
  KB2_CHECK_MSG(!members_.empty(), "subgroup needs at least one member");
  for (std::size_t i = 0; i < members_.size(); ++i) {
    KB2_CHECK_MSG(members_[i] >= 0 && members_[i] < parent.size(),
                  "subgroup member " << members_[i]
                                     << " out of parent group size "
                                     << parent.size());
    KB2_CHECK_MSG(i == 0 || members_[i - 1] < members_[i],
                  "subgroup members must be strictly ascending");
    if (members_[i] == parent.rank()) my_rank_ = static_cast<int>(i);
  }
  KB2_CHECK_MSG(my_rank_ >= 0, "rank " << parent.rank()
                                       << " is not a member of the subgroup");
  // Inherit the deadline the parent endpoint is already operating under.
  Communicator::set_timeout(parent.timeout());
}

int SubgroupComm::to_parent(int r) const {
  KB2_CHECK_MSG(r >= 0 && r < size(),
                "subgroup rank " << r << " out of group size " << size());
  return members_[static_cast<std::size_t>(r)];
}

void SubgroupComm::send(int dest, int tag, std::span<const std::byte> data) {
  parent_->send(to_parent(dest), tag, data);
}

std::vector<std::byte> SubgroupComm::recv(int src, int tag) {
  return parent_->recv(to_parent(src), tag);
}

void SubgroupComm::barrier() {
  // The parent's barrier counts every parent rank (including the dead ones
  // this subgroup exists to exclude), so synchronize with a members-only
  // binomial gather + release over point-to-point sends.
  const int p = size();
  if (p == 1) return;
  const int me = rank();
  ByteWriter token;
  token.write<std::uint8_t>(1);
  for (int mask = 1; mask < p; mask <<= 1) {
    if (me & mask) {
      send_frame(me & ~mask, kTagSubBarrier, token.bytes());
      break;
    }
    if (me + mask < p) recv_frame(me + mask, kTagSubBarrier);
  }
  std::vector<std::byte> release;
  broadcast(release, /*root=*/0);
}

void SubgroupComm::set_timeout(double seconds) {
  Communicator::set_timeout(seconds);
  // The parent endpoint is what actually blocks inside recv(), so the
  // deadline has to reach it.
  parent_->set_timeout(seconds);
}

void SubgroupComm::set_probe(CommProbe* probe) {
  Communicator::set_probe(probe);
  // Observation happens where bytes actually move; the probe then sees
  // subgroup traffic in the parent's (stable, full-group) rank space.
  parent_->set_probe(probe);
}

std::vector<int> SubgroupComm::failed_ranks() const {
  const auto parent_failed = parent_->failed_ranks();
  std::vector<int> out;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (std::find(parent_failed.begin(), parent_failed.end(), members_[i]) !=
        parent_failed.end()) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

std::vector<int> SubgroupComm::agree_survivors() {
  // The rendezvous runs among all live ranks of the underlying transport;
  // translate the agreed parent-space survivor set into this group's ranks.
  const auto parent_survivors = parent_->agree_survivors();
  std::vector<int> out;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (std::find(parent_survivors.begin(), parent_survivors.end(),
                  members_[i]) != parent_survivors.end()) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

}  // namespace keybin2::comm
