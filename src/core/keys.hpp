// Hierarchical keys (paper §3, step 2; inherited from KeyBin v1).
//
// A point's key in one dimension is the path of bin labels from depth 1 down
// to d_max over the range [r_min, r_max]: at each level the space halves, so
// the path is exactly the binary representation of the deepest-level bin
// index. We therefore store one uint32 per (point, dimension) — the bin at
// d_max — and recover any coarser level with a shift. The full point key is
// the tuple of per-dimension indices (the paper's concatenation "356406").
//
// Keys are computed independently per point and per dimension from the
// point's features alone — the property that makes KeyBin2 embarrassingly
// parallel and privacy preserving.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/matrix.hpp"

namespace keybin2::core {

/// Per-dimension value range used to anchor the key space.
struct Range {
  double lo = 0.0;
  double hi = 1.0;
};

/// Deepest-level bin index of value x over `range` at depth d_max
/// (2^d_max bins); out-of-range values clamp to the edge bins.
std::uint32_t key_of(double x, const Range& range, int d_max);

/// Coarsen a deepest-level key to `depth` (depth <= d_max).
inline std::uint32_t key_at_depth(std::uint32_t deepest_key, int d_max,
                                  int depth) {
  return deepest_key >> static_cast<unsigned>(d_max - depth);
}

/// Table of deepest-level keys: one row per point, one column per
/// (projected) dimension.
class KeyTable {
 public:
  KeyTable() = default;
  KeyTable(std::size_t points, std::size_t dims, int d_max)
      : dims_(dims), d_max_(d_max), keys_(points * dims, 0) {}

  std::size_t points() const { return dims_ ? keys_.size() / dims_ : 0; }
  std::size_t dims() const { return dims_; }
  int d_max() const { return d_max_; }

  std::uint32_t& at(std::size_t point, std::size_t dim) {
    return keys_[point * dims_ + dim];
  }
  std::uint32_t at(std::size_t point, std::size_t dim) const {
    return keys_[point * dims_ + dim];
  }

  std::uint32_t at_depth(std::size_t point, std::size_t dim, int depth) const {
    return key_at_depth(at(point, dim), d_max_, depth);
  }

  /// Re-dimension in place, reusing the existing allocation when it is large
  /// enough. Contents are unspecified afterwards; callers overwrite every
  /// entry. This is the scratch-reuse hook for per-trial workspaces.
  void reshape(std::size_t points, std::size_t dims, int d_max) {
    dims_ = dims;
    d_max_ = d_max;
    keys_.resize(points * dims);
  }

 private:
  std::size_t dims_ = 0;
  int d_max_ = 0;
  std::vector<std::uint32_t> keys_;
};

/// Compute keys for every point/dimension of a (projected) matrix, in
/// parallel over points. ranges.size() must equal points.cols().
KeyTable compute_keys(const Matrix& points, const std::vector<Range>& ranges,
                      int d_max);

/// Human-readable key string at `depth`, e.g. "35.64.06" — the paper's
/// concatenated form, used by the in-situ fingerprints.
std::string format_key(const KeyTable& keys, std::size_t point, int depth);

}  // namespace keybin2::core
