// X-means baseline (paper §2: "X-means proposes handling [the unknown k]
// with Bayesian Information Criterion (BIC) in order to automatically select
// the optimal K values") — the classic non-parametric comparator for
// KeyBin2's automatic cluster-count discovery.
//
// Pelleg & Moore's improve-structure loop: start from k_min centres, and for
// every cluster test a 2-means split of its points; keep the split when the
// two-cluster BIC of the region beats the one-cluster BIC. Repeat until no
// cluster splits or k_max is reached, with a global Lloyd refinement between
// rounds. BIC uses the identical spherical-Gaussian likelihood of the
// original paper.
#pragma once

#include <cstdint>

#include "baselines/kmeans.hpp"

namespace keybin2::baselines {

struct XMeansParams {
  std::size_t k_min = 1;
  std::size_t k_max = 32;
  int max_iters = 100;       // Lloyd iterations per refinement
  double tol = 1e-6;
  std::uint64_t seed = 42;
};

struct XMeansResult {
  std::vector<int> labels;
  Matrix centers;
  std::size_t k = 0;
  double bic = 0.0;
  int split_rounds = 0;
};

/// BIC of a k-means model under the identical spherical Gaussian assumption
/// X-means uses: ln L - (p/2) ln n with p = k*(dims+1) free parameters.
/// Exposed for tests.
double kmeans_bic(const Matrix& points, std::span<const int> labels,
                  const Matrix& centers);

XMeansResult xmeans(const Matrix& points, const XMeansParams& params);

}  // namespace keybin2::baselines
