#include "runtime/tracer.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "common/error.hpp"
#include "common/serialize.hpp"
#include "runtime/metrics.hpp"   // human_bytes
#include "runtime/timeline.hpp"

namespace keybin2::runtime {

std::string fold_scope_path(std::string_view path) {
  std::string key;
  key.reserve(path.size());
  std::size_t start = 0;
  while (start <= path.size()) {
    auto slash = path.find('/', start);
    if (slash == std::string_view::npos) slash = path.size();
    auto part = path.substr(start, slash - start);
    // A component with a digit tail is an iteration instance: trial0,
    // trial17, chunk3 all fold onto one stage.
    std::size_t digits = part.size();
    while (digits > 0 && part[digits - 1] >= '0' && part[digits - 1] <= '9') {
      --digits;
    }
    if (!key.empty()) key += '/';
    key += part.substr(0, digits);
    if (digits != part.size()) key += '*';
    start = slash + 1;
  }
  return key;
}

Tracer::Scope& Tracer::Scope::operator=(Scope&& o) noexcept {
  if (this != &o) {
    close();
    tracer_ = o.tracer_;
    o.tracer_ = nullptr;
  }
  return *this;
}

void Tracer::Scope::close() {
  if (tracer_ != nullptr) {
    tracer_->close_top();
    tracer_ = nullptr;
  }
}

Tracer::Scope Tracer::scope(std::string_view name) {
  Frame frame;
  if (!stack_.empty()) {
    frame.path = stack_.back().path;
    frame.path += '/';
  }
  frame.path += name;
  if (comm_ != nullptr) frame.at_open = comm_->stats();
  stack_.push_back(std::move(frame));
  for (auto* o : observers_) o->on_scope_open(stack_.back().path);
  return Scope(this);
}

void Tracer::close_top() {
  KB2_CHECK_MSG(!stack_.empty(), "Tracer scope closed with empty stack");
  Frame frame = std::move(stack_.back());
  stack_.pop_back();

  const std::int64_t t1 = now_ns();
  if (timeline_ != nullptr) {
    timeline_->add_span(frame.path, frame.t0_ns, t1);
  }
  for (auto* o : observers_) o->on_scope_close(frame.path, t1 - frame.t0_ns);
  auto& entry = entries_[frame.path];
  ++entry.calls;
  entry.seconds += static_cast<double>(t1 - frame.t0_ns) * 1e-9;
  if (comm_ != nullptr) {
    const auto delta = comm_->stats() - frame.at_open;
    // Exclusive attribution: children already claimed their share.
    entry.traffic += delta - frame.child_traffic;
    if (!stack_.empty()) stack_.back().child_traffic += delta;
  }
}

void Tracer::counter(std::string_view name, double delta) {
  counters_[std::string(name)] += delta;
}

comm::TrafficStats Tracer::total_traffic() const {
  comm::TrafficStats total;
  for (const auto& [path, entry] : entries_) total += entry.traffic;
  return total;
}

void Tracer::reset() {
  KB2_CHECK_MSG(stack_.empty(), "Tracer::reset with open scopes");
  entries_.clear();
  counters_.clear();
}

comm::TrafficStats TraceReport::total_traffic() const {
  comm::TrafficStats total;
  for (const auto& s : stages) total += s.traffic;
  return total;
}

std::string TraceReport::format() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-36s %6s %10s %10s %10s %14s %14s\n",
                "stage", "calls", "min(ms)", "mean(ms)", "max(ms)",
                "sent", "recv");
  out += line;
  for (const auto& s : stages) {
    std::snprintf(line, sizeof(line),
                  "%-36s %6llu %10.3f %10.3f %10.3f %9s/%-4llu %9s/%-4llu\n",
                  s.path.c_str(), static_cast<unsigned long long>(s.calls),
                  s.min_seconds * 1e3, s.mean_seconds * 1e3,
                  s.max_seconds * 1e3, human_bytes(s.traffic.bytes_sent).c_str(),
                  static_cast<unsigned long long>(s.traffic.messages_sent),
                  human_bytes(s.traffic.bytes_received).c_str(),
                  static_cast<unsigned long long>(s.traffic.messages_received));
    out += line;
  }
  const auto total = total_traffic();
  std::snprintf(line, sizeof(line),
                "%-36s %6s %10s %10s %10s %9s/%-4llu %9s/%-4llu\n", "total",
                "", "", "", "", human_bytes(total.bytes_sent).c_str(),
                static_cast<unsigned long long>(total.messages_sent),
                human_bytes(total.bytes_received).c_str(),
                static_cast<unsigned long long>(total.messages_received));
  out += line;
  for (const auto& [name, value] : counters) {
    std::snprintf(line, sizeof(line), "%-36s %.6g\n", name.c_str(), value);
    out += line;
  }
  return out;
}

TraceReport reduce_report(const Tracer& tracer, comm::Communicator& comm,
                          int root) {
  // Serialize this rank's trace...
  ByteWriter writer;
  writer.write<std::uint64_t>(tracer.entries().size());
  for (const auto& [path, entry] : tracer.entries()) {
    writer.write_string(path);
    writer.write(entry.calls);
    writer.write(entry.seconds);
    writer.write(entry.traffic);
  }
  writer.write<std::uint64_t>(tracer.counters().size());
  for (const auto& [name, value] : tracer.counters()) {
    writer.write_string(name);
    writer.write(value);
  }

  // ...and gather all ranks at root.
  const auto gathered = comm.gather(writer.bytes(), root);
  TraceReport report;
  if (comm.rank() != root) return report;

  struct Merged {
    int ranks = 0;
    std::uint64_t calls = 0;
    double min_s = std::numeric_limits<double>::infinity();
    double sum_s = 0.0;
    double max_s = 0.0;
    comm::TrafficStats traffic;
  };
  std::map<std::string, Merged> merged;
  for (const auto& blob : gathered) {
    ByteReader reader(blob);
    const auto n_entries = reader.read<std::uint64_t>();
    for (std::uint64_t i = 0; i < n_entries; ++i) {
      const auto path = reader.read_string();
      auto& m = merged[path];
      ++m.ranks;
      m.calls = std::max(m.calls, reader.read<std::uint64_t>());
      const auto seconds = reader.read<double>();
      m.min_s = std::min(m.min_s, seconds);
      m.sum_s += seconds;
      m.max_s = std::max(m.max_s, seconds);
      m.traffic += reader.read<comm::TrafficStats>();
    }
    const auto n_counters = reader.read<std::uint64_t>();
    for (std::uint64_t i = 0; i < n_counters; ++i) {
      const auto name = reader.read_string();
      report.counters[name] += reader.read<double>();
    }
  }

  report.ranks = comm.size();
  report.stages.reserve(merged.size());
  for (const auto& [path, m] : merged) {
    StageStats s;
    s.path = path;
    s.ranks = m.ranks;
    s.calls = m.calls;
    s.min_seconds = m.min_s;
    s.mean_seconds = m.sum_s / static_cast<double>(m.ranks);
    s.max_seconds = m.max_s;
    s.traffic = m.traffic;
    report.stages.push_back(std::move(s));
  }
  return report;
}

}  // namespace keybin2::runtime
