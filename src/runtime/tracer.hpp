// Per-rank execution tracing for the staged clustering pipeline.
//
// A Tracer records a hierarchy of timed scopes ("fit/trial0/bin") plus named
// counters, per rank. Scopes are RAII and strictly nested; each scope
// attributes to itself
//   * wall time      — inclusive of children (the natural stage reading), and
//   * traffic deltas — EXCLUSIVE of children (sampled from the attached
//     Communicator's TrafficStats at open/close, minus what child scopes
//     consumed), so summing traffic over every scope reproduces the
//     communicator's own totals.
// reduce_report() is a collective that gathers every rank's trace at root
// and merges it into min/mean/max wall time per stage and summed traffic —
// the per-stage breakdown the benches and `keybin2_cli --trace` print.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "comm/communicator.hpp"
#include "common/timer.hpp"

namespace keybin2::runtime {

class Timeline;

/// "fit/trial12/bin" -> "fit/trial*/bin": fold per-iteration scope instances
/// onto one canonical stage path (a digit-tailed component becomes "name*").
/// Shared by the HealthMonitor's EWMA baselines and the post-mortem stage
/// table, so live anomalies and kb2_analyze rows use identical keys.
std::string fold_scope_path(std::string_view path);

/// Live observation of scope boundaries, for in-process monitors (the
/// HealthMonitor keeps EWMA latency baselines from these). Calls arrive on
/// the tracer's own rank thread, strictly nested, open/close balanced from
/// the moment the observer is attached (an observer attached with scopes
/// already open sees their closes without the opens and must tolerate it).
class ScopeObserver {
 public:
  virtual ~ScopeObserver() = default;
  virtual void on_scope_open(std::string_view path) = 0;
  virtual void on_scope_close(std::string_view path, std::int64_t wall_ns) = 0;
};

class Tracer {
 public:
  /// Accumulated measurements of one scope path on one rank.
  struct Entry {
    std::uint64_t calls = 0;
    double seconds = 0.0;          // inclusive wall time
    comm::TrafficStats traffic;    // exclusive: this scope's own traffic
  };

  /// `comm` supplies the traffic counters sampled at scope boundaries; pass
  /// nullptr to trace wall time only.
  explicit Tracer(const comm::Communicator* comm = nullptr) : comm_(comm) {}

  /// Swap the communicator the traffic counters are sampled from — used when
  /// a Context shrinks to a survivor subgroup mid-run. Safe with scopes open
  /// as long as the new communicator's stats() continue the old one's
  /// counters (SubgroupComm delegates to its parent, so they do): open
  /// frames hold their at-open sample by value and deltas stay monotone.
  void rebind(const comm::Communicator* comm) { comm_ = comm; }

  /// Mirror every closed scope into `timeline` as a span (nullptr detaches).
  /// Scope timestamps come from the shared now_ns() clock, so spans line up
  /// with the timeline's flow events and the event log.
  void set_timeline(Timeline* timeline) { timeline_ = timeline; }

  /// Notify `observer` of every scope open/close, in attachment order.
  /// Multiple observers may coexist (the HealthMonitor and the continuous
  /// profiler both listen); attaching an already-attached observer is a
  /// no-op. Observers must outlive their attachment.
  void add_observer(ScopeObserver* observer) {
    if (observer == nullptr) return;
    for (auto* o : observers_) {
      if (o == observer) return;
    }
    observers_.push_back(observer);
  }

  void remove_observer(ScopeObserver* observer) {
    std::erase(observers_, observer);
  }

  /// RAII handle closing its scope on destruction. Scopes must nest: close
  /// (destroy) inner scopes before outer ones.
  class Scope {
   public:
    Scope() = default;
    Scope(Scope&& o) noexcept : tracer_(o.tracer_) { o.tracer_ = nullptr; }
    Scope& operator=(Scope&& o) noexcept;
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() { close(); }

    /// Close early (idempotent).
    void close();

   private:
    friend class Tracer;
    explicit Scope(Tracer* tracer) : tracer_(tracer) {}
    Tracer* tracer_ = nullptr;
  };

  /// Open the scope `name` under the currently open scope (path components
  /// joined with '/').
  [[nodiscard]] Scope scope(std::string_view name);

  /// Add `delta` to the named counter.
  void counter(std::string_view name, double delta);

  /// Entries keyed by full scope path, e.g. "fit/trial0/bin".
  const std::map<std::string, Entry>& entries() const { return entries_; }
  const std::map<std::string, double>& counters() const { return counters_; }

  /// Sum of every scope's (exclusive) traffic — matches the communicator's
  /// own counters when all communication happened inside traced scopes.
  comm::TrafficStats total_traffic() const;

  void reset();

 private:
  friend class Scope;

  struct Frame {
    std::string path;
    std::int64_t t0_ns = now_ns();  // shared clock: comparable to flow events
    comm::TrafficStats at_open;
    comm::TrafficStats child_traffic;  // claimed by closed children
  };

  void close_top();

  const comm::Communicator* comm_;
  Timeline* timeline_ = nullptr;
  std::vector<ScopeObserver*> observers_;
  std::vector<Frame> stack_;
  std::map<std::string, Entry> entries_;
  std::map<std::string, double> counters_;
};

/// One stage row of a merged (cross-rank) report.
struct StageStats {
  std::string path;
  int ranks = 0;                 // how many ranks entered this scope
  std::uint64_t calls = 0;       // max over ranks
  double min_seconds = 0.0;      // min over ranks of per-rank total
  double mean_seconds = 0.0;     // mean over reporting ranks
  double max_seconds = 0.0;      // max over ranks
  comm::TrafficStats traffic;    // summed over ranks
};

/// Merged trace: valid at the reduce root, empty elsewhere.
struct TraceReport {
  std::vector<StageStats> stages;          // sorted by path
  std::map<std::string, double> counters;  // summed over ranks
  int ranks = 0;

  bool empty() const { return stages.empty() && counters.empty(); }

  /// Sum of per-stage traffic (== group-wide communicator totals when all
  /// traffic was scoped).
  comm::TrafficStats total_traffic() const;

  /// Human-readable per-stage table.
  std::string format() const;
};

/// Collective: every rank of `comm` contributes its tracer state; the root
/// returns the merged report, every other rank an empty one. Must be entered
/// by all ranks in step (it gathers). The report reflects the tracer state
/// at entry — the gather's own traffic is not included.
TraceReport reduce_report(const Tracer& tracer, comm::Communicator& comm,
                          int root = 0);

}  // namespace keybin2::runtime
