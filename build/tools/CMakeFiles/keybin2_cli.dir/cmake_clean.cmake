file(REMOVE_RECURSE
  "CMakeFiles/keybin2_cli.dir/keybin2_cli.cpp.o"
  "CMakeFiles/keybin2_cli.dir/keybin2_cli.cpp.o.d"
  "keybin2"
  "keybin2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keybin2_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
