#include "runtime/health.hpp"

#include <cstdio>

#include "runtime/log.hpp"
#include "runtime/metrics.hpp"

namespace keybin2::runtime {

namespace {

std::string format_ms(double ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ns * 1e-6);
  return buf;
}

std::string format_ratio(double r) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", r);
  return buf;
}

}  // namespace

std::string HealthMonitor::baseline_key(std::string_view path) {
  return fold_scope_path(path);
}

void HealthMonitor::on_scope_open(std::string_view path) {
  open_.push_back(OpenScope{baseline_key(path), total_wait_ns_});
}

void HealthMonitor::on_scope_close(std::string_view path,
                                   std::int64_t wall_ns) {
  const std::string key = baseline_key(path);
  std::int64_t wait_ns = 0;
  if (!open_.empty() && open_.back().key == key) {
    wait_ns = total_wait_ns_ - open_.back().wait_at_open;
    open_.pop_back();
  } else {
    // Attached mid-run: this close has no recorded open. Drop any stale
    // frames (they can never match again) and skip the wait attribution.
    open_.clear();
  }

  auto& b = baselines_[key];
  const auto wall = static_cast<double>(wall_ns);
  const double ratio =
      wall_ns > 0 ? static_cast<double>(wait_ns) / wall : 0.0;

  if (b.count >= config_.warmup && wall_ns >= config_.min_wall_ns) {
    if (wall > config_.latency_factor * b.ewma_wall_ns &&
        b.ewma_wall_ns > 0.0) {
      ++anomalies_;
      if (metrics_ != nullptr) metrics_->add("health_latency_anomalies");
      if (log_ != nullptr) {
        log_->warn("stage_latency_anomaly",
                   {{"stage", key},
                    {"wall_ms", format_ms(wall)},
                    {"baseline_ms", format_ms(b.ewma_wall_ns)}});
      }
    }
    if (ratio > b.ewma_wait_ratio + config_.wait_ratio_slack) {
      ++anomalies_;
      if (metrics_ != nullptr) metrics_->add("health_wait_anomalies");
      if (log_ != nullptr) {
        log_->warn("wait_ratio_anomaly",
                   {{"stage", key},
                    {"wait_ratio", format_ratio(ratio)},
                    {"baseline", format_ratio(b.ewma_wait_ratio)}});
      }
    }
  }

  // Baseline update comes after the check so one slow outlier alarms
  // instead of dragging its own threshold up first.
  if (b.count == 0) {
    b.ewma_wall_ns = wall;
    b.ewma_wait_ratio = ratio;
  } else {
    b.ewma_wall_ns += config_.ewma_alpha * (wall - b.ewma_wall_ns);
    b.ewma_wait_ratio += config_.ewma_alpha * (ratio - b.ewma_wait_ratio);
  }
  ++b.count;
}

}  // namespace keybin2::runtime
