#include "md/builder.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "md/kabsch.hpp"
#include "md/synthetic.hpp"

namespace keybin2::md {
namespace {

TEST(PlaceAtom, RespectsBondLength) {
  const Vec3 a{0, 0, 0}, b{1, 0, 0}, c{1.5, 1.0, 0};
  const Vec3 d = place_atom(a, b, c, 1.33, 115.0, 60.0);
  EXPECT_NEAR(norm(d - c), 1.33, 1e-9);
}

TEST(PlaceAtom, RespectsBondAngle) {
  const Vec3 a{0, 0, 0}, b{1, 0, 0}, c{2, 0.8, 0};
  const double angle = 111.2;
  const Vec3 d = place_atom(a, b, c, 1.5, angle, -47.0);
  const Vec3 cb = b - c;
  const Vec3 cd = d - c;
  const double cos_angle =
      dot(cb, cd) / (norm(cb) * norm(cd));
  EXPECT_NEAR(std::acos(cos_angle) * 180.0 / std::numbers::pi, angle, 1e-6);
}

TEST(PlaceAtom, RespectsTorsion) {
  const Vec3 a{0, 1, 0}, b{0, 0, 0}, c{1.4, 0, 0};
  for (double torsion : {-150.0, -60.0, 0.0, 45.0, 120.0, 180.0}) {
    const Vec3 d = place_atom(a, b, c, 1.5, 110.0, torsion);
    EXPECT_NEAR(wrap_deg(dihedral_deg(a, b, c, d) - torsion), 0.0, 1e-6)
        << "torsion " << torsion;
  }
}

TEST(PlaceAtom, DegenerateFrameThrows) {
  const Vec3 a{0, 0, 0}, b{1, 0, 0};
  EXPECT_THROW(place_atom(a, b, b, 1.0, 100.0, 0.0), Error);
  EXPECT_THROW(place_atom(a, b, Vec3{2, 0, 0}, 1.0, 100.0, 0.0), Error);
}

TEST(Builder, ChainHasIdealGeometry) {
  std::vector<double> phi{0.0, -63.0, -120.0, -75.0};
  std::vector<double> psi{-43.0, 130.0, 150.0, 180.0};
  std::vector<double> omega{180.0, 180.0, 180.0, 180.0};
  const auto chain = build_backbone(phi, psi, omega);
  ASSERT_EQ(chain.size(), 4u);
  const BackboneGeometry geom;
  for (std::size_t r = 0; r < chain.size(); ++r) {
    EXPECT_NEAR(norm(chain[r].ca - chain[r].n), geom.n_ca, 1e-9);
    EXPECT_NEAR(norm(chain[r].c - chain[r].ca), geom.ca_c, 1e-9);
    if (r + 1 < chain.size()) {
      EXPECT_NEAR(norm(chain[r + 1].n - chain[r].c), geom.c_n, 1e-9);
    }
  }
}

TEST(Builder, TorsionRoundtrip) {
  // torsions -> coordinates -> torsions must be the identity (within float
  // noise) for every interior angle.
  Rng rng(7);
  const std::size_t n = 12;
  std::vector<double> phi(n), psi(n), omega(n);
  for (std::size_t r = 0; r < n; ++r) {
    phi[r] = rng.uniform(-179.0, 179.0);
    psi[r] = rng.uniform(-179.0, 179.0);
    omega[r] = rng.uniform() < 0.9 ? 180.0 + rng.normal(0.0, 3.0)
                                   : rng.normal(0.0, 3.0);
    omega[r] = wrap_deg(omega[r]);
  }
  const auto chain = build_backbone(phi, psi, omega);
  const auto back = recover_torsions(chain);
  for (std::size_t r = 0; r < n; ++r) {
    if (r > 0) {
      EXPECT_NEAR(angular_distance_deg(back.phi[r], phi[r]), 0.0, 1e-6)
          << "phi residue " << r;
    }
    if (r + 1 < n) {
      EXPECT_NEAR(angular_distance_deg(back.psi[r], psi[r]), 0.0, 1e-6)
          << "psi residue " << r;
      EXPECT_NEAR(angular_distance_deg(back.omega[r], omega[r]), 0.0, 1e-6)
          << "omega residue " << r;
    }
  }
}

TEST(Builder, TrajectoryFrameOverloadAgrees) {
  const auto st = generate_trajectory({.residues = 8, .frames = 5,
                                       .phases = 2, .transition_frames = 1,
                                       .seed = 9});
  const auto chain = build_backbone(st.trajectory, 2);
  EXPECT_EQ(chain.size(), 8u);
  const auto back = recover_torsions(chain);
  for (std::size_t r = 1; r + 1 < 8; ++r) {
    EXPECT_NEAR(angular_distance_deg(back.phi[r], st.trajectory.phi(2, r)),
                0.0, 1e-6);
  }
}

TEST(Builder, AlphaHelixIsCompactComparedToStrand) {
  // Sanity of the geometry: 16 residues of ideal alpha helix span much less
  // end-to-end distance than an extended beta strand.
  const std::size_t n = 16;
  std::vector<double> helix_phi(n, -63.0), helix_psi(n, -43.0),
      strand_phi(n, -120.0), strand_psi(n, 130.0), omega(n, 180.0);
  const auto helix = build_backbone(helix_phi, helix_psi, omega);
  const auto strand = build_backbone(strand_phi, strand_psi, omega);
  const double helix_span = norm(helix.back().ca - helix.front().ca);
  const double strand_span = norm(strand.back().ca - strand.front().ca);
  EXPECT_LT(helix_span, strand_span * 0.55);
}

TEST(Builder, ValidatesInputs) {
  std::vector<double> three(3, 0.0), two(2, 0.0);
  EXPECT_THROW(build_backbone(three, two, three), Error);
  EXPECT_THROW(build_backbone({}, {}, {}), Error);
}

}  // namespace
}  // namespace keybin2::md
