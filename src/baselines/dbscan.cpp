#include "baselines/dbscan.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <mutex>
#include <unordered_map>

#include "baselines/disjoint_set.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"

namespace keybin2::baselines {

namespace {

double sq_distance(std::span<const double> a, std::span<const double> b) {
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double x = a[i] - b[i];
    d += x * x;
  }
  return d;
}

/// Rebuild the full point set from every rank's shard. The real PDSDBSCAN
/// uses a spatial partitioning with halo exchange; gathering is the
/// single-node equivalent that preserves the parallel structure of the
/// algorithm (each rank still owns the neighbour computation for its slice).
Matrix allgather_points(comm::Communicator& comm, const Matrix& local,
                        std::vector<std::size_t>& slice_offsets) {
  ByteWriter w;
  w.write<std::uint64_t>(local.rows());
  w.write<std::uint64_t>(local.cols());
  w.write_span(local.flat());
  auto blobs = comm.allgather(w.bytes());

  Matrix all;
  slice_offsets.assign(blobs.size() + 1, 0);
  std::size_t cols = 0;
  for (std::size_t r = 0; r < blobs.size(); ++r) {
    ByteReader reader(blobs[r]);
    const auto rows = reader.read<std::uint64_t>();
    const auto rcols = reader.read<std::uint64_t>();
    auto flat = reader.read_vec<double>();
    if (rows > 0) {
      KB2_CHECK_MSG(cols == 0 || rcols == cols,
                    "ranks disagree on dimensionality");
      cols = rcols;
      for (std::size_t i = 0; i < rows; ++i) {
        all.append_row(std::span<const double>(flat.data() + i * rcols, rcols));
      }
    }
    slice_offsets[r + 1] = slice_offsets[r] + rows;
  }
  return all;
}

}  // namespace

DbscanResult pdsdbscan(comm::Communicator& comm, const Matrix& local_points,
                       const DbscanParams& params) {
  KB2_CHECK_MSG(params.eps > 0.0, "eps must be positive");
  KB2_CHECK_MSG(params.min_points >= 1, "min_points must be >= 1");
  const double eps2 = params.eps * params.eps;

  std::vector<std::size_t> offsets;
  const Matrix all = allgather_points(comm, local_points, offsets);
  const std::size_t n = all.rows();
  const auto me = static_cast<std::size_t>(comm.rank());
  const std::size_t begin = offsets[me], end = offsets[me + 1];

  // Phase 1 (parallel): core flags for this rank's slice.
  std::vector<std::uint64_t> core(n, 0);
  global_pool().parallel_for(end - begin, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t s = lo; s < hi; ++s) {
      const std::size_t i = begin + s;
      auto row = all.row(i);
      std::size_t count = 0;
      for (std::size_t j = 0; j < n; ++j) {
        if (sq_distance(row, all.row(j)) <= eps2) ++count;
      }
      if (count >= params.min_points) core[i] = 1;
    }
  });
  core = comm.allreduce(core, comm::ReduceOp::kMax);

  // Phase 2 (parallel): union edges (core-core) and border attachments for
  // this rank's slice.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> edges;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> attachments;
  {
    std::mutex mu;
    global_pool().parallel_for(
        end - begin, [&](std::size_t lo, std::size_t hi) {
          std::vector<std::pair<std::uint64_t, std::uint64_t>> my_edges;
          std::vector<std::pair<std::uint64_t, std::uint64_t>> my_attach;
          for (std::size_t s = lo; s < hi; ++s) {
            const std::size_t i = begin + s;
            auto row = all.row(i);
            if (core[i]) {
              for (std::size_t j = i + 1; j < n; ++j) {
                if (core[j] && sq_distance(row, all.row(j)) <= eps2) {
                  my_edges.emplace_back(i, j);
                }
              }
            } else {
              for (std::size_t j = 0; j < n; ++j) {
                if (core[j] && sq_distance(row, all.row(j)) <= eps2) {
                  my_attach.emplace_back(i, j);
                  break;  // a border point joins its first core neighbour
                }
              }
            }
          }
          std::lock_guard lk(mu);
          edges.insert(edges.end(), my_edges.begin(), my_edges.end());
          attachments.insert(attachments.end(), my_attach.begin(),
                             my_attach.end());
        });
  }

  // Merge phase: gather edge lists, replay into one union-find at the root,
  // broadcast the final labels.
  ByteWriter w;
  w.write<std::uint64_t>(edges.size());
  for (const auto& [a, b] : edges) {
    w.write(a);
    w.write(b);
  }
  w.write<std::uint64_t>(attachments.size());
  for (const auto& [a, b] : attachments) {
    w.write(a);
    w.write(b);
  }
  auto gathered = comm.gather(w.bytes(), /*root=*/0);

  std::vector<int> global_labels;
  ByteWriter label_writer;
  if (comm.rank() == 0) {
    DisjointSet dsu(n);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> all_attach;
    for (const auto& blob : gathered) {
      ByteReader r(blob);
      const auto n_edges = r.read<std::uint64_t>();
      for (std::uint64_t e = 0; e < n_edges; ++e) {
        const auto a = r.read<std::uint64_t>();
        const auto b = r.read<std::uint64_t>();
        dsu.unite(a, b);
      }
      const auto n_attach = r.read<std::uint64_t>();
      for (std::uint64_t e = 0; e < n_attach; ++e) {
        const auto a = r.read<std::uint64_t>();
        const auto b = r.read<std::uint64_t>();
        all_attach.emplace_back(a, b);
      }
    }
    // Compact cluster ids over core components only.
    global_labels.assign(n, -1);
    std::unordered_map<std::size_t, int> ids;
    for (std::size_t i = 0; i < n; ++i) {
      if (!core[i]) continue;
      const auto root = dsu.find(i);
      auto [it, inserted] = ids.try_emplace(root, static_cast<int>(ids.size()));
      global_labels[i] = it->second;
    }
    for (const auto& [border, host] : all_attach) {
      global_labels[border] = global_labels[host];
    }
    label_writer.write_vec(global_labels);
  }
  auto label_bytes = label_writer.take();
  comm.broadcast(label_bytes, /*root=*/0);
  if (comm.rank() != 0) {
    ByteReader r(label_bytes);
    global_labels = r.read_vec<int>();
  }

  DbscanResult result;
  result.labels.assign(global_labels.begin() + static_cast<std::ptrdiff_t>(begin),
                       global_labels.begin() + static_cast<std::ptrdiff_t>(end));
  int max_label = -1;
  for (int l : global_labels) max_label = std::max(max_label, l);
  result.clusters = static_cast<std::size_t>(max_label + 1);
  for (std::size_t i = 0; i < n; ++i) {
    if (core[i]) ++result.core_points;
    if (global_labels[i] < 0) ++result.noise_points;
  }
  return result;
}

DbscanResult dbscan(const Matrix& points, const DbscanParams& params) {
  comm::SelfComm self;
  return pdsdbscan(self, points, params);
}

double estimate_eps(const Matrix& points, std::size_t k, std::size_t sample,
                    std::uint64_t seed) {
  KB2_CHECK_MSG(points.rows() >= 2, "need at least two points");
  KB2_CHECK_MSG(k >= 1, "k must be >= 1");
  Rng rng(seed);
  const std::size_t s = std::min(sample, points.rows());

  // Sample without replacement via partial Fisher-Yates on an index vector.
  std::vector<std::size_t> idx(points.rows());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  for (std::size_t i = 0; i < s; ++i) {
    std::swap(idx[i], idx[i + rng.uniform_int(idx.size() - i)]);
  }

  std::vector<double> kth(s, 0.0);
  global_pool().parallel_for(s, [&](std::size_t lo, std::size_t hi) {
    std::vector<double> dist;
    for (std::size_t a = lo; a < hi; ++a) {
      dist.clear();
      auto row = points.row(idx[a]);
      for (std::size_t b = 0; b < s; ++b) {
        if (a == b) continue;
        dist.push_back(sq_distance(row, points.row(idx[b])));
      }
      const std::size_t kk = std::min(k - 1, dist.size() - 1);
      std::nth_element(dist.begin(),
                       dist.begin() + static_cast<std::ptrdiff_t>(kk),
                       dist.end());
      kth[a] = std::sqrt(dist[kk]);
    }
  });
  std::nth_element(kth.begin(), kth.begin() + static_cast<std::ptrdiff_t>(s / 2),
                   kth.end());
  return kth[s / 2];
}

}  // namespace keybin2::baselines
