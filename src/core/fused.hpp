// Fused project→key→bin data plane for the fit pipeline (DESIGN.md §4d).
//
// The staged reference path traverses the data four times: projection matmul,
// per-dimension range scan, compute_keys, and build_histograms (which
// re-reads the whole key table once per dimension, column-strided). The
// fused plane collapses this to two passes:
//
//   Pass A  fused_project_envelope — project each point and fold it into the
//           per-dimension min/max envelope in the same traversal. With an
//           identity projection the input matrix is passed through by
//           reference (no copy at all).
//   Pass B  fused_key_bin — assign keys and accumulate all per-dimension
//           histogram counts in one row-major traversal. Each parallel chunk
//           claims a private count shard (no locks, no atomics on the hot
//           path); shards are merged pairwise tree-wise afterwards.
//
// Per-dimension constants (lo, hi, hi-lo, 2^d_max, bins-1) are hoisted into
// BinScale structs-of-arrays once per trial, removing key_of's per-call
// range checks and d_max shifts from the inner loop. The key computation
// itself keeps the exact FP operation sequence of key_of —
// t = (x-lo)/(hi-lo); b = uint32(t*2^d_max); clamp — so keys, histograms and
// therefore the final model are bit-identical to the staged path (enforced
// by the property tests in tests/test_fused.cpp). In particular the division
// is NOT replaced by a multiply-with-reciprocal, which would change rounding.
//
// All scratch (projected matrix, key table, envelopes, shards) lives in a
// FusedWorkspace the caller keeps across bootstrap trials, so steady-state
// trials allocate nothing.
#pragma once

#include <cstdint>
#include <vector>

#include "common/matrix.hpp"
#include "core/keys.hpp"
#include "stats/histogram.hpp"

namespace keybin2::core {

/// Hoisted per-dimension binning constants (struct-of-arrays across
/// dimensions lives in FusedWorkspace so the inner loop vectorizes).
struct BinScale {
  double lo = 0.0;
  double hi = 1.0;
  double den = 1.0;    // hi - lo, computed once
  double dbins = 2.0;  // double(2^d_max)
  double dlast = 1.0;  // double(2^d_max - 1)
  std::uint32_t last = 1;
};

BinScale make_bin_scale(const Range& range, int d_max);

/// Bit-identical replacement for key_of(x, range, d_max) with the checks and
/// shift hoisted into `s`. Branch-reduced: the in-range bin is computed
/// unconditionally (the clamp makes the uint32 cast well-defined for any
/// finite x), then the two edge cases select over it exactly as key_of's
/// early returns would.
inline std::uint32_t fused_key(double x, const BinScale& s) {
  const double t = (x - s.lo) / s.den;
  double p = t * s.dbins;
  p = p < 0.0 ? 0.0 : p;
  p = p > s.dlast ? s.dlast : p;
  auto b = static_cast<std::uint32_t>(p);
  if (x <= s.lo) b = 0;
  if (x >= s.hi) b = s.last;
  return b;
}

/// Reusable cross-trial scratch for the fused plane. Buffers grow to the
/// high-water mark of the first trial and are reused verbatim afterwards.
struct FusedWorkspace {
  Matrix projected;
  std::vector<double> env_lo, env_hi;  // pass A output, one per dimension
  KeyTable keys;                       // pass B output

  // Pass B internals: per-chunk count shards (chunk_of claims them through
  // an atomic cursor; at most one per pool worker) and the SoA bin scales.
  std::vector<std::vector<double>> shards;
  std::vector<BinScale> scales;

  // Pass A internals: per-chunk envelopes, merged in row order so the result
  // is bit-identical to a sequential scan (min/max keep the first of equal
  // values, which matters only for signed zeros).
  struct ChunkEnvelope {
    std::size_t begin = 0;
    std::vector<double> lo, hi;
  };
  std::vector<ChunkEnvelope> chunk_envelopes;
};

/// Pass A: project `local_points` through `projection` (empty => identity)
/// and compute per-dimension [min, max] envelopes in the same traversal.
/// `dims` is the projected dimensionality every rank agreed on (an empty
/// shard cannot derive it locally — its envelope must still have one
/// +inf/-inf slot per dimension for the allreduce to line up). Fills
/// ws.env_lo / ws.env_hi exactly like the staged range scan and returns the
/// projected matrix — ws.projected, or `local_points` itself under identity
/// (zero-copy).
const Matrix& fused_project_envelope(const Matrix& local_points,
                                     const Matrix& projection,
                                     std::size_t dims, FusedWorkspace& ws);

/// Pass B: keys + all-dimension histograms in one traversal. Fills ws.keys
/// and returns per-dimension hierarchies whose deepest counts equal the
/// staged build_histograms output bit-for-bit.
std::vector<stats::HierarchicalHistogram> fused_key_bin(
    const Matrix& projected, const std::vector<Range>& ranges, int d_max,
    FusedWorkspace& ws);

}  // namespace keybin2::core
