// Figure 1: random projections decorrelate clusters whose axis-aligned
// projections overlap.
//
// The paper shows a correlated 2-D dataset (a) and five random projections
// (b)-(f): some separate the clusters, some do not. We quantify what the
// figure shows visually: for the original axes and each of 5 projections,
// the per-dimension class overlap (two-sample KS separation between the two
// clusters' 1-D histograms — higher = more separable) and the
// histogram-space Calinski-Harabasz score KeyBin2 uses to pick a winner.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "core/keybin2.hpp"
#include "core/projection.hpp"
#include "data/shapes.hpp"
#include "stats/histogram.hpp"
#include "stats/ks_test.hpp"

namespace {

using namespace keybin2;

/// Per-dimension separability of the two labelled clusters: the two-sample
/// KS statistic between their 1-D marginals (1.0 = perfectly separable,
/// ~0 = fully overlapping projections).
std::vector<double> per_dimension_separation(const Matrix& points,
                                             const std::vector<int>& labels) {
  std::vector<double> out;
  for (std::size_t j = 0; j < points.cols(); ++j) {
    double lo = points(0, j), hi = points(0, j);
    for (std::size_t i = 0; i < points.rows(); ++i) {
      lo = std::min(lo, points(i, j));
      hi = std::max(hi, points(i, j));
    }
    stats::Histogram h0(lo, hi + 1e-9, 64), h1(lo, hi + 1e-9, 64);
    for (std::size_t i = 0; i < points.rows(); ++i) {
      (labels[i] == 0 ? h0 : h1).add(points(i, j));
    }
    out.push_back(stats::ks_statistic(h0.counts(), h1.counts()));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  auto opt = bench::Options::parse(argc, argv);
  const std::size_t n = opt.full ? 50000 : 5000;
  std::printf(
      "Figure 1 reproduction: two correlated 2-D clusters (%zu points), "
      "original axes vs 5 random projections.\n\n",
      2 * n);
  const auto d = data::correlated_pair(n, 4.0, opt.seed);

  std::printf("%-16s %12s %12s %14s\n", "View", "sep(dim 0)", "sep(dim 1)",
              "KeyBin2 F1");
  auto report = [&](const char* name, const Matrix& points,
                    std::uint64_t fit_seed) {
    const auto sep = per_dimension_separation(points, d.labels);
    // Cluster THIS view with axis-aligned KeyBin2 (no further projection) to
    // show which views are separable by binning.
    core::Params params;
    params.use_projection = false;
    params.seed = fit_seed;
    const auto result = core::fit(points, params);
    const auto acc = bench::score_labels(result.labels, d.labels);
    std::printf("%-16s %12.3f %12.3f %14.3f\n", name, sep[0], sep[1], acc.f1);
  };

  report("(a) original", d.points, opt.seed);
  for (int p = 0; p < 5; ++p) {
    const auto a =
        core::make_projection_matrix(2, 2, opt.seed + 100 + static_cast<std::uint64_t>(p));
    const auto projected = core::project(d.points, a);
    char name[32];
    std::snprintf(name, sizeof(name), "(%c) projection", 'b' + p);
    report(name, projected, opt.seed);
  }

  // And the punchline: full KeyBin2 (bootstrapped random projections) on the
  // original data picks a separating view automatically.
  core::Params params;
  params.bootstrap_trials = 12;
  params.n_rp = 2;
  params.seed = opt.seed;
  const auto result = core::fit(d.points, params);
  const auto acc = bench::score_labels(result.labels, d.labels);
  std::printf(
      "\nKeyBin2 with bootstrapped projections (t=12): %d clusters, F1 = "
      "%.3f (model score %.1f)\n",
      result.n_clusters(), acc.f1, result.model.score());
  bench::Reporter::global().write(opt);
  return 0;
}
