// SPMD launch harness: run the same function on N simulated ranks.
//
// run_ranks() is the moral equivalent of `mpirun -np N`: it spawns one thread
// per rank, hands each a Communicator endpoint, joins them, and rethrows the
// first rank exception on the caller (so tests see failures).
#pragma once

#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/thread_comm.hpp"

namespace keybin2::comm {

/// Run `fn(comm)` on `n_ranks` simulated ranks; blocks until all complete.
/// Returns the aggregate traffic stats (sum over ranks).
TrafficStats run_ranks(int n_ranks,
                       const std::function<void(Communicator&)>& fn);

/// Run `fn(comm) -> T` on `n_ranks` ranks and collect per-rank results,
/// indexed by rank.
template <typename T>
std::vector<T> run_ranks_collect(
    int n_ranks, const std::function<T(Communicator&)>& fn) {
  std::vector<T> results(static_cast<std::size_t>(n_ranks));
  run_ranks(n_ranks, [&](Communicator& c) {
    results[static_cast<std::size_t>(c.rank())] = fn(c);
  });
  return results;
}

}  // namespace keybin2::comm
