// trace_check: structural validation of the observability JSON artifacts.
//
//   trace_check trace.json [--min-ranks N] [--min-flows N]
//   trace_check --bench BENCH_kernel_fusion.json
//   trace_check --soak BENCH_chaos_soak.json
//   trace_check --analysis analysis.json
//   trace_check --profile snapshot.json [--min-ranks N]
//   trace_check --folded profile.folded
//   trace_check --postmortem postmortem.json
//
// Default (trace) mode parses a Chrome trace-event document (what
// `keybin2 cluster --trace-json` writes) into a JsonValue tree and checks
// the invariants the exporter promises:
//   1. the file is one well-formed JSON value with a traceEvents array,
//   2. at least --min-ranks distinct rank lanes carry process_name AND
//      thread_name metadata — a lane is (pid, tid) = (rank, incarnation),
//      so a respawned rank's pre- and post-kill tracks are checked
//      separately,
//   3. at least one duration span, every span with dur >= 0,
//   4. spans nest: on each lane, two spans either don't overlap or one
//      contains the other (a child must lie within its parent's bounds),
//   5. flow pairing: every "s" has exactly one matching "f" by id and vice
//      versa — orphaned ends are listed — and each pair's recv does not
//      precede its send; at least --min-flows pairs exist,
//   6. "f" events carry args.wait_us >= 0 (the wait-provenance the
//      critical-path analysis depends on).
//
// --bench mode validates a bench reporter file: well-formed, a "series"
// object, and every series the kernel-fusion gate depends on present with
// a numeric mean.
//
// --soak mode validates a kb2_soak chaos report: the recovery aggregates
// (acceptable/respawns/regrow_epochs/typed_errors) are numeric, every
// schedule_* series ended in a legal outcome (clean, recovered, or an
// attributed typed_error:*), and acceptable == 1.
//
// --profile mode validates a `kb2_top --once --json` telemetry snapshot:
// header fields present, every rank entry carries the full numeric schema
// (state/incarnation/pid/points/wait_ratio/rss/samples/heartbeat), wait
// ratios within [0, 1], and at least --min-ranks ranks actually published
// (state != empty) with a non-empty stage string recorded.
//
// --postmortem mode validates a `kb2_postmortem --json` report: verdict is
// one of victim/deadlock/straggler/clean, every rank story carries the full
// schema, dead_ranks agrees with the per-rank dead flags, a deadlock comes
// with its cycle, and wait edges are [waiter, waited-on] pairs.
//
// --folded mode validates a collapsed-stack flamegraph file (what
// `keybin2 cluster --profile-folded` writes): every line is
// "frame;frame;... count" with a positive integer count, and the total
// sample count across stacks is positive.
//
// --analysis mode validates a `kb2_analyze --json` report: required
// sections present, the compute/comm/wait split sums to the critical-path
// total, and the critical-path total equals the end-to-end wall time within
// 1% — the construction guarantee that makes the decomposition trustworthy.
//
// Exit 0 when everything holds, 1 with a diagnostic otherwise — which is
// what lets check_tier1.sh --trace-smoke / --bench-smoke / --analyze-smoke
// gate on it.
#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/json.hpp"

namespace {

using keybin2::runtime::JsonValue;

int fail(const char* what) {
  std::fprintf(stderr, "trace_check: FAIL: %s\n", what);
  return 1;
}

// Series every BENCH_kernel_fusion.json must carry (bench/kernel_fusion.cpp
// writes exactly these; the smoke gate fails if any goes missing or is
// renamed without updating this list).
constexpr const char* kBenchSeries[] = {
    "staged_seconds",     "fused_seconds",      "fused_speedup",
    "reduce_bytes_dense", "reduce_bytes_sparse", "reduce_bytes_savings",
};

// Series every BENCH_table2_scaling.json must carry since the comm-mode
// sweep landed (bench/table2_scaling.cpp run_comm_mode_sweep writes these;
// the perf gate's bytes comparison and the README frontier table both read
// them).
constexpr const char* kCommModeSeries[] = {
    "reduce_bytes_mode_dense",  "reduce_bytes_mode_sparse",
    "reduce_bytes_mode_coreset", "coreset_vs_sparse_ratio",
    "coreset_ari",              "coreset_cells_sent",
    "coreset_mass_dropped",     "auto_picks_coreset",
};

int check_bench(const JsonValue& doc) {
  const auto* series = doc.find("series");
  if (series == nullptr || !series->is_object()) {
    return fail("no series object");
  }
  // Dispatch the required-series list on the report's bench name; files
  // from before the name field (or other benches) keep the kernel-fusion
  // contract this mode was introduced for.
  const auto* bench_name = doc.find("bench");
  const bool comm_sweep = bench_name != nullptr && bench_name->is_string() &&
                          bench_name->string() == "table2_scaling";
  const char* const* names = comm_sweep ? kCommModeSeries : kBenchSeries;
  const std::size_t count =
      comm_sweep ? sizeof(kCommModeSeries) / sizeof(kCommModeSeries[0])
                 : sizeof(kBenchSeries) / sizeof(kBenchSeries[0]);
  for (std::size_t i = 0; i < count; ++i) {
    const char* name = names[i];
    const auto* s = series->find(name);
    if (s == nullptr) {
      std::fprintf(stderr, "trace_check: FAIL: missing series %s\n", name);
      return 1;
    }
    const auto* mean = s->find("mean");
    if (mean == nullptr || !mean->is_number()) {
      std::fprintf(stderr, "trace_check: FAIL: series %s has no mean\n", name);
      return 1;
    }
  }
  std::printf("trace_check: OK: bench report carries all %zu series\n",
              count);
  return 0;
}

// Legal outcomes for a schedule_* series in a chaos_soak report: the run
// converged untouched ("clean"), converged after respawn/regrow
// ("recovered"), or died with an attributed typed error ("typed_error:…").
// Anything else — above all "silent_mismatch" or "untyped_error" — is
// exactly the defect the soak gate exists to catch, so its presence in a
// report that claims PASS means the reporter and the gate disagree.
bool soak_outcome_legal(const std::string& outcome) {
  return outcome == "clean" || outcome == "recovered" ||
         outcome.rfind("typed_error:", 0) == 0;
}

int check_soak(const JsonValue& doc) {
  const auto* bench = doc.find("bench");
  if (bench == nullptr || !bench->is_string() ||
      bench->string() != "chaos_soak") {
    return fail("not a chaos_soak report (bench name mismatch)");
  }
  const auto* series = doc.find("series");
  if (series == nullptr || !series->is_object()) {
    return fail("no series object");
  }
  // The aggregates the ladder's observability promises.
  for (const char* name :
       {"acceptable", "respawns", "regrow_epochs", "typed_errors"}) {
    const auto* s = series->find(name);
    if (s == nullptr || !s->find("mean") || !s->find("mean")->is_number()) {
      std::fprintf(stderr,
                   "trace_check: FAIL: soak report missing numeric series %s\n",
                   name);
      return 1;
    }
  }
  // Every schedule must be present and must have ended in a legal outcome.
  std::size_t schedules = 0;
  for (const auto& [name, value] : series->members()) {
    if (name.rfind("schedule_", 0) != 0) continue;
    ++schedules;
    const auto colon = name.find(':');
    const std::string outcome =
        colon == std::string::npos ? "" : name.substr(colon + 1);
    if (!soak_outcome_legal(outcome)) {
      std::fprintf(stderr,
                   "trace_check: FAIL: schedule series %s has illegal "
                   "outcome '%s'\n",
                   name.c_str(), outcome.c_str());
      return 1;
    }
    if (JsonValue::number_or(value.find("mean"), 0.0) != 1.0) {
      std::fprintf(stderr, "trace_check: FAIL: schedule series %s mean != 1\n",
                   name.c_str());
      return 1;
    }
  }
  if (schedules == 0) return fail("soak report carries no schedule series");
  // acceptable is the fraction of schedules that met the gate; a report that
  // was written at all must have 100% (kb2_soak exits nonzero otherwise).
  if (JsonValue::number_or(series->find("acceptable")->find("mean"), 0.0) !=
      1.0) {
    return fail("soak report written with acceptable < 1");
  }
  std::printf(
      "trace_check: OK: soak report carries %zu schedules, all outcomes "
      "legal, acceptable=1\n",
      schedules);
  return 0;
}

int check_analysis(const JsonValue& doc) {
  for (const char* key : {"ranks", "wall_ns"}) {
    const auto* v = doc.find(key);
    if (v == nullptr || !v->is_number()) {
      std::fprintf(stderr, "trace_check: FAIL: analysis missing %s\n", key);
      return 1;
    }
  }
  const auto* cp = doc.find("critical_path");
  if (cp == nullptr || !cp->is_object()) {
    return fail("analysis missing critical_path");
  }
  for (const char* key : {"total_ns", "compute_ns", "comm_ns", "wait_ns"}) {
    const auto* v = cp->find(key);
    if (v == nullptr || !v->is_number()) {
      std::fprintf(stderr, "trace_check: FAIL: critical_path missing %s\n",
                   key);
      return 1;
    }
  }
  for (const char* key : {"segments"}) {
    const auto* v = cp->find(key);
    if (v == nullptr || !v->is_array()) {
      return fail("critical_path missing segments array");
    }
  }
  for (const char* key : {"stages", "per_rank"}) {
    const auto* v = doc.find(key);
    if (v == nullptr || !v->is_array()) {
      std::fprintf(stderr, "trace_check: FAIL: analysis missing %s array\n",
                   key);
      return 1;
    }
  }
  if (doc.find("straggler", "rank") == nullptr) {
    return fail("analysis missing straggler attribution");
  }

  const double total = cp->find("total_ns")->number();
  const double split = cp->find("compute_ns")->number() +
                       cp->find("comm_ns")->number() +
                       cp->find("wait_ns")->number();
  if (std::fabs(split - total) > 0.5) {  // integer sums; allow rounding only
    std::fprintf(stderr,
                 "trace_check: FAIL: compute+comm+wait = %.0f != total %.0f\n",
                 split, total);
    return 1;
  }
  const double wall = doc.find("wall_ns")->number();
  if (wall <= 0.0) return fail("analysis wall_ns not positive");
  const double err = std::fabs(total - wall) / wall;
  if (err > 0.01) {
    std::fprintf(stderr,
                 "trace_check: FAIL: critical path %.0f ns vs wall %.0f ns "
                 "(%.2f%% apart, need <= 1%%)\n",
                 total, wall, 100.0 * err);
    return 1;
  }
  std::printf(
      "trace_check: OK: analysis critical path covers wall within %.3f%%, "
      "%zu segment(s)\n",
      100.0 * err, cp->find("segments")->array().size());
  return 0;
}

// kb2_top --once --json schema. Slot states mirror telemetry.hpp: "empty"
// (rank never published — legal for a snapshot taken before the first
// publish), "live", "done". Published ranks must carry the full field set
// with sane ranges; --min-ranks sets how many ranks must have actually
// published.
int check_profile(const JsonValue& doc, long min_ranks) {
  const auto* ranks = doc.find("ranks");
  if (ranks == nullptr || !ranks->is_array()) {
    return fail("profile snapshot has no ranks array");
  }
  const double n_ranks = JsonValue::number_or(doc.find("n_ranks"), -1.0);
  if (n_ranks <= 0.0) return fail("profile snapshot n_ranks not positive");
  if (doc.find("job") == nullptr || !doc.find("job")->is_string()) {
    return fail("profile snapshot missing job string");
  }
  if (ranks->array().size() != static_cast<std::size_t>(n_ranks)) {
    return fail("profile snapshot ranks array size != n_ranks");
  }

  long published = 0;
  for (const auto& r : ranks->array()) {
    const int rank =
        static_cast<int>(JsonValue::number_or(r.find("rank"), -1.0));
    for (const char* key :
         {"rank", "incarnation", "pid", "points_per_sec", "points_total",
          "wait_ratio", "rss_kb", "samples", "anomalies", "respawns_total",
          "regrow_epochs", "recovery_p50_ns", "recovery_p99_ns",
          "heartbeat_age_ms"}) {
      const auto* v = r.find(key);
      if (v == nullptr || !v->is_number()) {
        std::fprintf(stderr,
                     "trace_check: FAIL: rank %d entry missing numeric %s\n",
                     rank, key);
        return 1;
      }
    }
    const auto* stage = r.find("stage");
    if (stage == nullptr || !stage->is_string()) {
      std::fprintf(stderr,
                   "trace_check: FAIL: rank %d entry missing stage string\n",
                   rank);
      return 1;
    }
    const auto* state_v = r.find("state");
    if (state_v == nullptr || !state_v->is_string()) {
      std::fprintf(stderr,
                   "trace_check: FAIL: rank %d entry missing state string\n",
                   rank);
      return 1;
    }
    const std::string& state = state_v->string();
    if (state != "empty" && state != "live" && state != "done") {
      std::fprintf(stderr,
                   "trace_check: FAIL: rank %d illegal state '%s'\n", rank,
                   state.c_str());
      return 1;
    }
    const double wait = r.find("wait_ratio")->number();
    if (wait < 0.0 || wait > 1.0) {
      std::fprintf(stderr,
                   "trace_check: FAIL: rank %d wait_ratio %g outside "
                   "[0, 1]\n",
                   rank, wait);
      return 1;
    }
    if (state != "empty") {
      ++published;
      if (r.find("incarnation")->number() < 0.0 ||
          r.find("pid")->number() <= 0.0) {
        std::fprintf(stderr,
                     "trace_check: FAIL: published rank %d has bad "
                     "incarnation/pid\n",
                     rank);
        return 1;
      }
    }
  }
  if (published < min_ranks) {
    std::fprintf(stderr,
                 "trace_check: FAIL: %ld published rank(s), need >= %ld\n",
                 published, min_ranks);
    return 1;
  }
  std::printf(
      "trace_check: OK: profile snapshot covers %g slot(s), %ld "
      "published, schema holds\n",
      n_ranks, published);
  return 0;
}

// kb2_postmortem --json schema: top-level job/reason/verdict (one of the
// four attribution classes), a ranks array where every entry carries the
// reconstructed story (rank/incarnation/dead/last_stage/waiting_on and the
// record accounting), plus dead_ranks and wait_edges arrays. A deadlock
// verdict must come with a non-empty cycle; a victim verdict with a
// non-empty dead_ranks.
int check_postmortem(const JsonValue& doc) {
  for (const char* key : {"job", "reason", "verdict"}) {
    const auto* v = doc.find(key);
    if (v == nullptr || !v->is_string()) {
      std::fprintf(stderr, "trace_check: FAIL: postmortem missing %s string\n",
                   key);
      return 1;
    }
  }
  const std::string& verdict = doc.find("verdict")->string();
  if (verdict != "victim" && verdict != "deadlock" && verdict != "straggler" &&
      verdict != "clean") {
    std::fprintf(stderr, "trace_check: FAIL: illegal verdict '%s'\n",
                 verdict.c_str());
    return 1;
  }
  for (const char* key : {"ranks", "dead_ranks", "wait_edges", "cycle"}) {
    const auto* v = doc.find(key);
    if (v == nullptr || !v->is_array()) {
      std::fprintf(stderr, "trace_check: FAIL: postmortem missing %s array\n",
                   key);
      return 1;
    }
  }
  const auto& ranks = doc.find("ranks")->array();
  if (ranks.empty()) return fail("postmortem report covers no ranks");
  std::size_t dead = 0;
  for (const auto& r : ranks) {
    const int rank =
        static_cast<int>(JsonValue::number_or(r.find("rank"), -1.0));
    for (const char* key : {"rank", "incarnation", "epoch_ns", "waiting_on",
                            "records_valid", "records_total", "dropped"}) {
      const auto* v = r.find(key);
      if (v == nullptr || !v->is_number()) {
        std::fprintf(stderr,
                     "trace_check: FAIL: rank %d story missing numeric %s\n",
                     rank, key);
        return 1;
      }
    }
    const auto* d = r.find("dead");
    if (d == nullptr || d->kind() != JsonValue::Kind::kBool) {
      std::fprintf(stderr, "trace_check: FAIL: rank %d story missing dead\n",
                   rank);
      return 1;
    }
    if (d->boolean()) ++dead;
    for (const char* key : {"last_stage", "death_reason"}) {
      const auto* v = r.find(key);
      if (v == nullptr || !v->is_string()) {
        std::fprintf(stderr,
                     "trace_check: FAIL: rank %d story missing %s string\n",
                     rank, key);
        return 1;
      }
    }
    const double waiting_on = r.find("waiting_on")->number();
    if (waiting_on < -2.0 ||
        waiting_on >= static_cast<double>(ranks.size())) {
      std::fprintf(stderr,
                   "trace_check: FAIL: rank %d waiting_on %g out of range\n",
                   rank, waiting_on);
      return 1;
    }
  }
  if (verdict == "victim" && doc.find("dead_ranks")->array().empty()) {
    return fail("victim verdict with empty dead_ranks");
  }
  if (dead != doc.find("dead_ranks")->array().size()) {
    return fail("dead_ranks array disagrees with per-rank dead flags");
  }
  if (verdict == "deadlock" && doc.find("cycle")->array().empty()) {
    return fail("deadlock verdict with empty cycle");
  }
  for (const auto& e : doc.find("wait_edges")->array()) {
    if (!e.is_array() || e.array().size() != 2) {
      return fail("wait_edges entry is not a [waiter, waited-on] pair");
    }
  }
  std::printf(
      "trace_check: OK: postmortem verdict '%s', %zu rank(s), %zu dead, "
      "%zu wait edge(s)\n",
      verdict.c_str(), ranks.size(), dead,
      doc.find("wait_edges")->array().size());
  return 0;
}

// Collapsed-stack file: "frame;frame;... count" per line. The "(dropped)"
// pseudo-stack (sampler ring overflow) is legal; real stacks must be
// non-empty and the grand total positive (a profiled fit with zero samples
// means the sampler never ran).
int check_folded(const std::string& text) {
  std::size_t stacks = 0;
  unsigned long long total = 0;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto sp = line.rfind(' ');
    if (sp == std::string::npos || sp == 0 || sp + 1 >= line.size()) {
      std::fprintf(stderr,
                   "trace_check: FAIL: folded line without 'stack count': "
                   "%s\n",
                   line.c_str());
      return 1;
    }
    char* end = nullptr;
    const unsigned long long count =
        std::strtoull(line.c_str() + sp + 1, &end, 10);
    if (end == nullptr || *end != '\0' || count == 0) {
      std::fprintf(stderr,
                   "trace_check: FAIL: folded line with non-positive "
                   "count: %s\n",
                   line.c_str());
      return 1;
    }
    ++stacks;
    if (line.rfind("(dropped)", 0) != 0) total += count;
  }
  if (stacks == 0) return fail("folded file carries no stacks");
  if (total == 0) return fail("folded file has zero non-dropped samples");
  std::printf(
      "trace_check: OK: folded profile carries %zu stack(s), %llu "
      "sample(s)\n",
      stacks, total);
  return 0;
}

struct SpanRec {
  double start = 0.0;
  double end = 0.0;
  const std::string* name = nullptr;
};

int check_trace(const JsonValue& doc, long min_ranks, long min_flows) {
  const auto* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return fail("no traceEvents array");
  }

  // lane = (pid, tid) = (rank, incarnation) -> which metadata names it
  // carries. A respawned rank gets a fresh tid lane; its spans must nest
  // within their own track, not against the dead incarnation's.
  using Lane = std::pair<int, int>;
  std::map<Lane, std::pair<bool, bool>> lanes;
  std::map<Lane, std::vector<SpanRec>> spans_by_lane;
  struct FlowEnd {
    double ts = 0.0;
    int count = 0;
  };
  std::map<std::uint64_t, FlowEnd> sends;
  std::map<std::uint64_t, FlowEnd> recvs;
  std::size_t span_count = 0;

  for (const auto& ev : events->array()) {
    if (!ev.is_object()) return fail("traceEvents holds a non-object");
    const auto* ph = ev.find("ph");
    if (ph == nullptr || !ph->is_string()) return fail("event without ph");
    const int pid =
        static_cast<int>(JsonValue::number_or(ev.find("pid"), -1.0));
    const int tid =
        static_cast<int>(JsonValue::number_or(ev.find("tid"), 0.0));
    const Lane lane{pid, tid};
    const double ts = JsonValue::number_or(ev.find("ts"), 0.0);
    const auto* name = ev.find("name");

    if (ph->string() == "M") {
      if (name != nullptr && name->is_string()) {
        if (name->string() == "process_name") lanes[lane].first = true;
        if (name->string() == "thread_name") lanes[lane].second = true;
      }
    } else if (ph->string() == "X") {
      const double dur = JsonValue::number_or(ev.find("dur"), -1.0);
      if (dur < 0.0) {
        std::fprintf(stderr,
                     "trace_check: FAIL: span '%s' has negative duration\n",
                     name != nullptr && name->is_string()
                         ? name->string().c_str()
                         : "?");
        return 1;
      }
      ++span_count;
      spans_by_lane[lane].push_back(SpanRec{
          ts, ts + dur,
          name != nullptr && name->is_string() ? &name->string() : nullptr});
    } else if (ph->string() == "s" || ph->string() == "f") {
      const auto* id = ev.find("id");
      if (id == nullptr || !id->is_number()) {
        return fail("flow event without numeric id");
      }
      auto& end = (ph->string() == "s" ? sends : recvs)[static_cast<
          std::uint64_t>(id->number())];
      end.ts = ts;
      ++end.count;
      if (ph->string() == "f") {
        const double wait = JsonValue::number_or(
            ev.find("args", "wait_us"), 0.0);
        if (wait < 0.0) return fail("flow 'f' with negative args.wait_us");
      }
    }
  }

  // Every track needs both metadata names; min_ranks counts distinct
  // ranks, not tracks (a rank with two incarnations is still one rank).
  std::map<int, int> ranks_named;
  for (const auto& [lane, meta] : lanes) {
    if (meta.first && meta.second) {
      ++ranks_named[lane.first];
    } else {
      std::fprintf(stderr,
                   "trace_check: FAIL: lane (%d, inc %d) missing %s "
                   "metadata\n",
                   lane.first, lane.second,
                   meta.first ? "thread_name" : "process_name");
      return 1;
    }
  }
  const long named_lanes = static_cast<long>(ranks_named.size());
  if (named_lanes < min_ranks) {
    std::fprintf(stderr,
                 "trace_check: FAIL: %ld rank timeline(s), need >= %ld\n",
                 named_lanes, min_ranks);
    return 1;
  }
  if (span_count == 0) return fail("no duration spans (empty metrics?)");

  // Nesting: sort (start asc, end desc) puts parents before children; a
  // span overlapping the top of the open stack without being contained
  // breaks strict nesting.
  for (auto& [lane, spans] : spans_by_lane) {
    std::sort(spans.begin(), spans.end(),
              [](const SpanRec& a, const SpanRec& b) {
                return a.start != b.start ? a.start < b.start : a.end > b.end;
              });
    std::vector<const SpanRec*> open;
    for (const auto& s : spans) {
      while (!open.empty() && open.back()->end <= s.start) open.pop_back();
      if (!open.empty() && s.end > open.back()->end) {
        std::fprintf(stderr,
                     "trace_check: FAIL: lane (%d, inc %d) span '%s' "
                     "[%.3f, %.3f] escapes parent '%s' [%.3f, %.3f]\n",
                     lane.first, lane.second,
                     s.name != nullptr ? s.name->c_str() : "?", s.start,
                     s.end,
                     open.back()->name != nullptr ? open.back()->name->c_str()
                                                  : "?",
                     open.back()->start, open.back()->end);
        return 1;
      }
      open.push_back(&s);
    }
  }

  // Flow pairing: exactly one send and one recv per id, recv not before
  // send (all timestamps come from the shared monotone clock).
  std::size_t pairs = 0;
  std::size_t orphans = 0;
  auto orphan = [&orphans](const char* side, std::uint64_t id, int count) {
    ++orphans;
    if (orphans <= 8) {
      std::fprintf(stderr,
                   "trace_check: orphaned flow id %" PRIu64
                   ": %d '%s' end(s) without partner\n",
                   id, count, side);
    }
  };
  for (const auto& [id, s] : sends) {
    const auto r = recvs.find(id);
    if (r == recvs.end()) {
      orphan("s", id, s.count);
      continue;
    }
    if (s.count != 1 || r->second.count != 1) {
      std::fprintf(stderr,
                   "trace_check: FAIL: flow id %" PRIu64
                   " duplicated (%d sends, %d recvs)\n",
                   id, s.count, r->second.count);
      return 1;
    }
    if (r->second.ts < s.ts) {
      std::fprintf(stderr,
                   "trace_check: FAIL: flow id %" PRIu64
                   " delivered at %.3f us before its send at %.3f us\n",
                   id, r->second.ts, s.ts);
      return 1;
    }
    ++pairs;
  }
  for (const auto& [id, r] : recvs) {
    if (sends.find(id) == sends.end()) orphan("f", id, r.count);
  }
  if (orphans > 0) {
    std::fprintf(stderr, "trace_check: FAIL: %zu orphaned flow end(s)\n",
                 orphans);
    return 1;
  }
  if (pairs < static_cast<std::size_t>(min_flows)) {
    std::fprintf(stderr,
                 "trace_check: FAIL: %zu flow pair(s), need >= %ld\n", pairs,
                 min_flows);
    return 1;
  }

  std::printf(
      "trace_check: OK: %ld rank timeline(s), %zu span(s), %zu flow "
      "pair(s), nesting and pairing invariants hold\n",
      named_lanes, span_count, pairs);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  long min_ranks = 1;
  long min_flows = 0;
  bool bench_mode = false;
  bool soak_mode = false;
  bool analysis_mode = false;
  bool profile_mode = false;
  bool folded_mode = false;
  bool postmortem_mode = false;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "trace_check: missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--min-ranks")) {
      min_ranks = std::strtol(next("--min-ranks"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--min-flows")) {
      min_flows = std::strtol(next("--min-flows"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--bench")) {
      bench_mode = true;
    } else if (!std::strcmp(argv[i], "--soak")) {
      soak_mode = true;
    } else if (!std::strcmp(argv[i], "--analysis")) {
      analysis_mode = true;
    } else if (!std::strcmp(argv[i], "--profile")) {
      profile_mode = true;
    } else if (!std::strcmp(argv[i], "--folded")) {
      folded_mode = true;
    } else if (!std::strcmp(argv[i], "--postmortem")) {
      postmortem_mode = true;
    } else if (!std::strcmp(argv[i], "--help")) {
      std::printf("usage: trace_check trace.json [--min-ranks N] "
                  "[--min-flows N]\n"
                  "       trace_check --bench BENCH_*.json\n"
                  "       trace_check --soak BENCH_chaos_soak.json\n"
                  "       trace_check --analysis analysis.json\n"
                  "       trace_check --profile snapshot.json "
                  "[--min-ranks N]\n"
                  "       trace_check --folded profile.folded\n"
                  "       trace_check --postmortem postmortem.json\n");
      return 0;
    } else if (path.empty()) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "trace_check: unexpected argument %s\n", argv[i]);
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: trace_check trace.json [--min-ranks N] "
                 "[--min-flows N] | --bench | --soak | --analysis\n");
    return 2;
  }

  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    std::fprintf(stderr, "trace_check: cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  if (text.empty()) return fail("file is empty");

  if (folded_mode) return check_folded(text);  // line format, not JSON

  const auto doc = keybin2::runtime::json_parse(text);
  if (!doc.has_value()) return fail("not well-formed JSON");

  if (bench_mode) return check_bench(*doc);
  if (soak_mode) return check_soak(*doc);
  if (analysis_mode) return check_analysis(*doc);
  if (profile_mode) return check_profile(*doc, min_ranks);
  if (postmortem_mode) return check_postmortem(*doc);
  return check_trace(*doc, min_ranks, min_flows);
}
