// The shared-memory telemetry plane (DESIGN.md §8).
//
// A running job publishes one seqlock-versioned snapshot per rank into a
// named POSIX shm segment, and any observer (tools/kb2_top, tests) attaches
// read-only by name and renders the table. Same publish-after-copy
// discipline as the ProcComm ring heads: bump the slot sequence odd, write
// the payload, bump it even with release ordering; readers copy and retry.
//
// Lifecycle (the part that makes respawn work):
//   * The *launcher* creates the segment before run_ranks(). Under the
//     process backend every rank — including respawned incarnations, which
//     are forked by the parent — inherits the MAP_SHARED mapping through
//     fork, so a SIGKILL'd rank's replacement writes the same slot with its
//     new incarnation number. Under the thread backend all ranks share the
//     launcher's mapping directly.
//   * Unlike the ProcComm group segment (unlinked immediately — invisible
//     by design), the telemetry segment STAYS LINKED so kb2_top can attach;
//     the creator unlinks it in ~TelemetrySegment(). The residue check in
//     test_profile holds jobs to that contract.
//
// Writer rules: exactly one writer per slot — the rank thread. The SIGPROF
// handler never publishes (it would nest inside an interrupted writer). A
// stale published_ns is information, not a bug: a hung rank's heartbeat age
// is how kb2_top shows it hanging.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace keybin2::runtime::profile {

/// One rank's live snapshot. Fixed-size POD so the segment layout is just
/// header + n_ranks slots; 256-byte aligned to keep writers off each
/// other's cache lines.
struct alignas(256) TelemetrySlot {
  static constexpr std::uint32_t kEmpty = 0;
  static constexpr std::uint32_t kLive = 1;
  static constexpr std::uint32_t kDone = 2;
  static constexpr std::size_t kMaxStage = 96;

  std::uint32_t seq = 0;          // seqlock: odd while mid-write
  std::uint32_t state = kEmpty;
  std::uint32_t incarnation = 0;  // comm::Communicator::incarnation()
  std::int32_t pid = 0;
  std::int64_t published_ns = 0;  // now_ns() at publish; age = staleness
  std::uint64_t samples = 0;      // profiler samples accounted so far
  std::uint64_t points_total = 0;
  double points_per_sec = 0.0;
  double wait_ratio = 0.0;        // recv+barrier wait / wall
  std::uint64_t rss_kb = 0;
  std::uint64_t anomalies = 0;    // HealthMonitor::anomalies()
  // Recovery-ladder accounting (v2): group-wide respawn/regrow totals from
  // the communicator, plus this rank's recovery-latency quantiles.
  std::uint64_t respawns_total = 0;
  std::uint64_t regrow_epochs = 0;
  std::int64_t recovery_p50_ns = 0;
  std::int64_t recovery_p99_ns = 0;
  char stage[kMaxStage] = {};     // current scope path (tail-truncated)
};

struct TelemetryHeader {
  static constexpr std::uint64_t kMagic = 0x4b42325445'4c4531ull;  // "KB2TELE1"
  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  std::uint32_t n_ranks = 0;
  std::int32_t creator_pid = 0;
  std::int64_t created_ns = 0;
  char job[64] = {};
};

/// Value-type copy of one slot, as read (untorn) by an observer.
struct TelemetrySample {
  int rank = 0;
  TelemetrySlot slot;
};

/// Creator side: shm_open + ftruncate + mmap, linked for the segment's
/// lifetime. Construct in the launcher BEFORE run_ranks().
class TelemetrySegment {
 public:
  /// `name` is a POSIX shm name ("/kb2-tele-1234"; a missing leading slash
  /// is added). Empty -> "/kb2-tele-<pid>". Throws on failure — telemetry
  /// was explicitly requested, silent absence would be worse.
  TelemetrySegment(std::string name, int n_ranks, std::string_view job);
  ~TelemetrySegment();
  TelemetrySegment(const TelemetrySegment&) = delete;
  TelemetrySegment& operator=(const TelemetrySegment&) = delete;

  const std::string& name() const { return name_; }
  int n_ranks() const { return n_ranks_; }
  TelemetrySlot* slot(int rank);

 private:
  std::string name_;
  int n_ranks_ = 0;
  void* base_ = nullptr;
  std::size_t len_ = 0;
};

/// Rank side: owns the periodic publish into one slot. Rate-limited — call
/// maybe_publish() as often as you like (scope open/close), it writes at
/// most once per cadence. publish_now() bypasses the rate limit (state
/// transitions, final flush).
class TelemetryPublisher {
 public:
  TelemetryPublisher(TelemetrySlot* slot, std::int64_t cadence_ns)
      : slot_(slot), cadence_ns_(cadence_ns) {}

  /// Fields the caller updates between publishes.
  struct Update {
    std::uint32_t state = TelemetrySlot::kLive;
    std::uint32_t incarnation = 0;
    std::uint64_t samples = 0;
    std::uint64_t points_total = 0;
    double points_per_sec = 0.0;
    double wait_ratio = 0.0;
    std::uint64_t anomalies = 0;
    std::uint64_t respawns_total = 0;
    std::uint64_t regrow_epochs = 0;
    std::int64_t recovery_p50_ns = 0;
    std::int64_t recovery_p99_ns = 0;
    std::string_view stage;
  };

  void maybe_publish(const Update& u);
  void publish_now(const Update& u);

 private:
  TelemetrySlot* slot_;
  std::int64_t cadence_ns_;
  std::int64_t last_publish_ns_ = 0;
};

/// Observer side: attach read-only by name or pid and copy out untorn
/// snapshots. Detaches (but never unlinks) on destruction.
class TelemetryReader {
 public:
  /// Returns nullptr (with *error set) when the segment is missing or
  /// malformed — an attach tool wants a message, not an exception.
  static std::unique_ptr<TelemetryReader> attach(const std::string& name,
                                                 std::string* error);
  ~TelemetryReader();
  TelemetryReader(const TelemetryReader&) = delete;
  TelemetryReader& operator=(const TelemetryReader&) = delete;

  const TelemetryHeader& header() const { return header_; }

  /// Copy every slot, seqlock-retried. Torn slots (writer mid-publish on
  /// every retry) are skipped this round — the next refresh gets them.
  std::vector<TelemetrySample> snapshot() const;

 private:
  TelemetryReader() = default;
  TelemetryHeader header_;
  void* base_ = nullptr;
  std::size_t len_ = 0;
};

/// Canonical segment name for a launcher pid ("/kb2-tele-<pid>").
std::string telemetry_name_for_pid(int pid);

/// Current resident set size of the calling process, in KiB (0 if unknown).
std::uint64_t read_rss_kb();

/// The kb2_top --once --json payload: header + one object per readable
/// slot, with heartbeat ages computed against `now_ns`. Shared between the
/// tool and test_profile so the schema is checked where it is produced.
std::string top_snapshot_json(const TelemetryReader& reader,
                              std::int64_t now_ns);

}  // namespace keybin2::runtime::profile
