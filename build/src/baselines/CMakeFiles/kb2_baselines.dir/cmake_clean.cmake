file(REMOVE_RECURSE
  "CMakeFiles/kb2_baselines.dir/dbscan.cpp.o"
  "CMakeFiles/kb2_baselines.dir/dbscan.cpp.o.d"
  "CMakeFiles/kb2_baselines.dir/disjoint_set.cpp.o"
  "CMakeFiles/kb2_baselines.dir/disjoint_set.cpp.o.d"
  "CMakeFiles/kb2_baselines.dir/kmeans.cpp.o"
  "CMakeFiles/kb2_baselines.dir/kmeans.cpp.o.d"
  "CMakeFiles/kb2_baselines.dir/parallel_kmeans.cpp.o"
  "CMakeFiles/kb2_baselines.dir/parallel_kmeans.cpp.o.d"
  "CMakeFiles/kb2_baselines.dir/xmeans.cpp.o"
  "CMakeFiles/kb2_baselines.dir/xmeans.cpp.o.d"
  "libkb2_baselines.a"
  "libkb2_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kb2_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
