#include "core/cells.hpp"

#include "comm/coreset.hpp"
#include "common/serialize.hpp"

namespace keybin2::core {

CellMap count_cells(const KeyTable& keys, const std::vector<int>& kept_dims,
                    const std::vector<DimensionPartition>& partitions,
                    int depth, double weight_per_point) {
  const std::vector<int> depths(kept_dims.size(), depth);
  return count_cells(keys, kept_dims, partitions, depths, weight_per_point);
}

CellMap count_cells(const KeyTable& keys, const std::vector<int>& kept_dims,
                    const std::vector<DimensionPartition>& partitions,
                    std::span<const int> depths, double weight_per_point) {
  CellMap cells;
  std::vector<std::uint32_t> coord(kept_dims.size());
  for (std::size_t i = 0; i < keys.points(); ++i) {
    for (std::size_t k = 0; k < kept_dims.size(); ++k) {
      const auto j = static_cast<std::size_t>(kept_dims[k]);
      coord[k] = partitions[k].primary_of(keys.at_depth(i, j, depths[k]));
    }
    cells[coord] += weight_per_point;
  }
  return cells;
}

std::vector<std::byte> serialize_cells(const CellMap& cells) {
  ByteWriter w;
  w.write<std::uint64_t>(cells.size());
  for (const auto& [coord, density] : cells) {
    w.write_vec(coord);
    w.write(density);
  }
  return w.take();
}

void merge_cells(CellMap& into, std::span<const std::byte> bytes) {
  ByteReader r(bytes);
  const auto n = r.read<std::uint64_t>();
  for (std::uint64_t i = 0; i < n; ++i) {
    auto coord = r.read_vec<std::uint32_t>();
    const auto density = r.read<double>();
    into[std::move(coord)] += density;
  }
}

CellMap coreset_cells(const CellMap& cells, std::size_t max_cells,
                      double epsilon, std::uint64_t seed,
                      double* mass_dropped) {
  if (mass_dropped != nullptr) *mass_dropped = 0.0;
  if (cells.size() <= max_cells) return cells;

  // Run the shared weighted sampler over the map's (already deterministic)
  // iteration order, then rebuild the surviving subset.
  std::vector<const CellMap::value_type*> entries;
  std::vector<double> masses;
  entries.reserve(cells.size());
  masses.reserve(cells.size());
  for (const auto& entry : cells) {
    entries.push_back(&entry);
    masses.push_back(entry.second);
  }
  comm::coreset::Options opts;
  opts.max_cells = max_cells;
  opts.epsilon = epsilon;
  opts.seed = seed;
  const auto sel = comm::coreset::select_weighted(masses, opts, seed);

  CellMap out;
  for (const auto& [pos, weight] : sel.kept) {
    out.emplace(entries[pos]->first, weight);
  }
  if (mass_dropped != nullptr) *mass_dropped = sel.mass_dropped;
  return out;
}

std::vector<Cell> to_cell_vector(const CellMap& cells) {
  std::vector<Cell> out;
  out.reserve(cells.size());
  for (const auto& [coord, density] : cells) {
    out.push_back(Cell{coord, density, -1});
  }
  return out;
}

}  // namespace keybin2::core
