# Empty dependencies file for kb2_baselines.
# This may be replaced when dependencies are built.
