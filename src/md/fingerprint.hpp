// Cluster fingerprints (paper §5.1-5.2, Figure 4).
//
// "Sequences of fine grained clusters will form a cluster fingerprint. This
// fingerprint can be used to identify stable phases and to differentiate
// conformational search spaces." A fingerprint is the per-frame sequence of
// KeyBin2 cluster labels; its change points should line up with the
// trajectory's metastable-phase boundaries.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace keybin2::md {

struct FingerprintSegment {
  std::size_t begin = 0;
  std::size_t end = 0;  // one past last frame
  int label = -1;
};

/// Maximal constant-label runs, ignoring runs shorter than `min_run` frames
/// (which are folded into the following run — debouncing against single-frame
/// flicker during transitions).
std::vector<FingerprintSegment> fingerprint_segments(
    std::span<const int> labels, std::size_t min_run = 1);

/// Frames where the (debounced) fingerprint changes.
std::vector<std::size_t> change_points(std::span<const int> labels,
                                       std::size_t min_run = 1);

/// Boundary-detection score: a predicted change point matches a true one if
/// within `tolerance` frames (greedy one-to-one matching); returns pairwise
/// (precision, recall, f1) over boundaries.
struct BoundaryScore {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  std::size_t matched = 0;
};
BoundaryScore boundary_agreement(std::span<const std::size_t> predicted,
                                 std::span<const std::size_t> truth,
                                 std::size_t tolerance);

}  // namespace keybin2::md
