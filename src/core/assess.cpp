#include "core/assess.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "stats/distributions.hpp"

namespace keybin2::core {

double histogram_calinski_harabasz(
    const std::vector<stats::Histogram>& dim_hists,
    const std::vector<DimensionPartition>& partitions,
    const std::vector<Cell>& cells, AssessBreakdown* breakdown) {
  KB2_CHECK_MSG(dim_hists.size() == partitions.size(),
                "one histogram per partitioned dimension required");
  const std::size_t q_count = cells.size();
  if (breakdown) *breakdown = AssessBreakdown{};
  if (q_count < 2) return 0.0;

  const std::size_t dims = dim_hists.size();
  std::size_t total_bins = 0;
  for (const auto& h : dim_hists) total_bins += h.bins();

  // Global centre: 50th percentile bin per dimension.
  std::vector<std::size_t> global_center(dims, 0);
  for (std::size_t j = 0; j < dims; ++j) {
    global_center[j] = stats::percentile_bin(dim_hists[j].counts(), 50.0);
  }

  double w_q = 0.0, b_q = 0.0;
  std::vector<std::vector<std::size_t>> centroids;
  centroids.reserve(q_count);
  for (const auto& cell : cells) {
    KB2_CHECK_MSG(cell.coord.size() == dims, "cell arity mismatch");
    std::vector<std::size_t> centroid(dims, 0);
    for (std::size_t j = 0; j < dims; ++j) {
      const auto [begin, end] = partitions[j].range_of(cell.coord[j]);
      const auto counts = dim_hists[j].counts();

      // Centroid: the mode bin inside the primary cluster's range.
      std::size_t mode = begin;
      double mode_density = counts[begin];
      double range_mass = 0.0;
      for (std::size_t b = begin; b < end; ++b) {
        range_mass += counts[b];
        if (counts[b] > mode_density) {
          mode_density = counts[b];
          mode = b;
        }
      }
      centroid[j] = mode;

      // Within-cluster dispersion over this dimension's range.
      for (std::size_t b = begin; b < end; ++b) {
        const double d = static_cast<double>(b) - static_cast<double>(mode);
        w_q += d * d * counts[b];
      }

      // Between-cluster dispersion against the global centre.
      const double dc = static_cast<double>(mode) -
                        static_cast<double>(global_center[j]);
      b_q += dc * dc * range_mass;
    }
    centroids.push_back(std::move(centroid));
  }

  double score = 0.0;
  if (b_q > 0.0 && total_bins > q_count) {
    const double w_safe = std::max(w_q, 1e-12);
    const double dof = static_cast<double>(total_bins - q_count) /
                       static_cast<double>(q_count - 1);
    const double spread_factor =
        std::max(1.0, std::log2(static_cast<double>(q_count - 1)));
    score = (b_q / w_safe) * dof * spread_factor;
  }

  if (breakdown) {
    breakdown->within = w_q;
    breakdown->between = b_q;
    breakdown->score = score;
    breakdown->centroids = std::move(centroids);
    breakdown->global_center = std::move(global_center);
  }
  return score;
}

}  // namespace keybin2::core
