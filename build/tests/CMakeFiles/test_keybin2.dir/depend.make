# Empty dependencies file for test_keybin2.
# This may be replaced when dependencies are built.
