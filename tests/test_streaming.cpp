#include "core/streaming.hpp"

#include <gtest/gtest.h>

#include "comm/launch.hpp"
#include "common/error.hpp"
#include "core/keybin2.hpp"
#include "data/gaussian_mixture.hpp"
#include "data/partition.hpp"
#include "stats/metrics.hpp"

namespace keybin2::core {
namespace {

TEST(Streaming, CountsPushedPoints) {
  StreamingKeyBin2 s(3);
  EXPECT_EQ(s.points_seen(), 0u);
  const double p[] = {1.0, 2.0, 3.0};
  s.push(p);
  EXPECT_EQ(s.points_seen(), 1u);

  Matrix batch(5, 3);
  s.push_batch(batch);
  EXPECT_EQ(s.points_seen(), 6u);
}

TEST(Streaming, RejectsWrongArity) {
  StreamingKeyBin2 s(3);
  const double p[] = {1.0, 2.0};
  EXPECT_THROW(s.push(p), Error);
}

TEST(Streaming, RefitBeforeDataThrows) {
  StreamingKeyBin2 s(2);
  EXPECT_THROW(s.refit(), Error);
  EXPECT_THROW(s.model(), Error);
  EXPECT_FALSE(s.has_model());
}

TEST(Streaming, RecoversMixtureFromStream) {
  const auto spec = data::make_paper_mixture(12, 3, 1);
  const auto d = data::sample(spec, 6000, 2);
  StreamingKeyBin2 s(12);
  s.push_batch(d.points);
  s.refit();
  ASSERT_TRUE(s.has_model());

  std::vector<int> labels(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    labels[i] = s.label(d.points.row(i));
  }
  const auto scores = stats::pairwise_scores(labels, d.labels);
  EXPECT_GT(scores.f1, 0.75);
  EXPECT_GE(s.model().n_clusters(), 3);
}

TEST(Streaming, AgreesWithBatchFit) {
  const auto spec = data::make_paper_mixture(16, 4, 3);
  const auto d = data::sample(spec, 8000, 4);

  const auto batch = fit(d.points);

  StreamingKeyBin2 s(16, Params{}, /*reservoir=*/4096);
  s.push_batch(d.points);
  s.refit();
  const auto stream_labels = s.model().predict(d.points);

  // Streaming re-anchors ranges and estimates cells from a reservoir, so
  // agreement is statistical, not exact.
  EXPECT_GT(stats::adjusted_rand_index(stream_labels, batch.labels), 0.6);
}

TEST(Streaming, IncrementalPushesMatchOneBatch) {
  const auto spec = data::make_paper_mixture(8, 2, 5);
  const auto d = data::sample(spec, 3000, 6);

  StreamingKeyBin2 one(8);
  one.push_batch(d.points);
  one.refit();

  StreamingKeyBin2 many(8);
  for (std::size_t i = 0; i < d.size(); ++i) many.push(d.points.row(i));
  many.refit();

  // Same data in any batching produces identical histograms, hence
  // identical models (the reservoir differs only via the same seeded RNG
  // fed in the same order, so it is identical too).
  const auto la = one.model().predict(d.points);
  const auto lb = many.model().predict(d.points);
  EXPECT_EQ(la, lb);
}

TEST(Streaming, HandlesRangeExpansionMidStream) {
  // First batch in [0, 1); second far away at 100 — ranges must double out.
  StreamingKeyBin2 s(1);
  for (int i = 0; i < 500; ++i) {
    const double p[] = {i / 500.0};
    s.push(p);
  }
  for (int i = 0; i < 500; ++i) {
    const double p[] = {100.0 + i / 500.0};
    s.push(p);
  }
  s.refit();
  const double lo[] = {0.5};
  const double hi[] = {100.5};
  EXPECT_NE(s.label(lo), s.label(hi));
  EXPECT_EQ(s.model().n_clusters(), 2);
}

TEST(Streaming, PeriodicRefitIsStable) {
  const auto spec = data::make_paper_mixture(10, 3, 7);
  const auto d = data::sample(spec, 4000, 8);
  StreamingKeyBin2 s(10);
  // Refit every 1000 points, like an in-situ consumer would.
  for (std::size_t i = 0; i < d.size(); ++i) {
    s.push(d.points.row(i));
    if ((i + 1) % 1000 == 0) s.refit();
  }
  const auto labels = s.model().predict(d.points);
  EXPECT_GT(stats::pairwise_scores(labels, d.labels).f1, 0.7);
}

TEST(Streaming, DistributedRefitMergesRanks) {
  const auto spec = data::make_paper_mixture(10, 4, 9);
  const auto d = data::sample(spec, 4000, 10);
  const auto shards = data::shard(d, 4);

  std::vector<int> combined(d.size());
  comm::run_ranks(4, [&](comm::Communicator& c) {
    const auto r = static_cast<std::size_t>(c.rank());
    StreamingKeyBin2 s(10);
    s.push_batch(shards[r].points);
    s.refit(c);
    const auto labels = s.model().predict(shards[r].points);
    const auto ranges = data::partition_rows(d.size(), 4);
    std::copy(labels.begin(), labels.end(),
              combined.begin() + static_cast<std::ptrdiff_t>(ranges[r].begin));
  });
  EXPECT_GT(stats::pairwise_scores(combined, d.labels).f1, 0.7);
}

TEST(Streaming, DistributedRanksWithDisjointRangesReconcile) {
  // Rank 0 sees values near 0, rank 1 near 1000: the refit must reconcile
  // the wildly different histogram ranges into one envelope.
  comm::run_ranks(2, [&](comm::Communicator& c) {
    StreamingKeyBin2 s(1);
    const double base = c.rank() == 0 ? 0.0 : 1000.0;
    for (int i = 0; i < 400; ++i) {
      const double p[] = {base + i * 0.001};
      s.push(p);
    }
    s.refit(c);
    const double a[] = {0.2};
    const double b[] = {1000.2};
    EXPECT_NE(s.label(a), s.label(b));
  });
}

TEST(Streaming, SingleClusterStreamStaysSingle) {
  const auto spec = data::make_paper_mixture(6, 1, 11);
  const auto d = data::sample(spec, 3000, 12);
  StreamingKeyBin2 s(6);
  s.push_batch(d.points);
  s.refit();
  EXPECT_LE(s.model().n_clusters(), 2);
}

TEST(Streaming, ReservoirCapacityIsValidated) {
  EXPECT_THROW(StreamingKeyBin2(3, Params{}, 4), Error);
  EXPECT_THROW(StreamingKeyBin2(0), Error);
}

}  // namespace
}  // namespace keybin2::core
