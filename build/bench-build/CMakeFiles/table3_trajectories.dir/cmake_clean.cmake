file(REMOVE_RECURSE
  "../bench/table3_trajectories"
  "../bench/table3_trajectories.pdb"
  "CMakeFiles/table3_trajectories.dir/table3_trajectories.cpp.o"
  "CMakeFiles/table3_trajectories.dir/table3_trajectories.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_trajectories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
