#include "md/synthetic.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "stats/distributions.hpp"

namespace keybin2::md {
namespace {

TEST(Synthetic, RespectsConfiguredShape) {
  const auto st = generate_trajectory({.residues = 25, .frames = 400,
                                       .phases = 4, .transition_frames = 20,
                                       .seed = 1});
  EXPECT_EQ(st.trajectory.frames(), 400u);
  EXPECT_EQ(st.trajectory.residues(), 25u);
  EXPECT_EQ(st.phase.size(), 400u);
  EXPECT_EQ(st.phase_structures.size(), 4u);
}

TEST(Synthetic, PhasesAreContiguousAndComplete) {
  const auto st = generate_trajectory({.residues = 10, .frames = 500,
                                       .phases = 5, .transition_frames = 10,
                                       .seed = 2});
  std::set<int> seen;
  for (std::size_t f = 1; f < 500; ++f) {
    EXPECT_GE(st.phase[f], st.phase[f - 1]);  // monotone phase ids
    seen.insert(st.phase[f]);
  }
  seen.insert(st.phase[0]);
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Synthetic, TransitionsMarkPhaseEntries) {
  const auto st = generate_trajectory({.residues = 10, .frames = 600,
                                       .phases = 3, .transition_frames = 40,
                                       .seed = 3});
  // Frames right after a phase switch are transitions; deep inside a phase
  // they are not.
  for (std::size_t f = 1; f < 600; ++f) {
    if (st.phase[f] != st.phase[f - 1]) {
      EXPECT_TRUE(st.in_transition[f]);
      EXPECT_FALSE(st.in_transition[f - 1]);
    }
  }
  EXPECT_FALSE(st.in_transition[0]);
}

TEST(Synthetic, MetastableFramesMatchTargetStructures) {
  const auto st = generate_trajectory({.residues = 40, .frames = 800,
                                       .phases = 2, .transition_frames = 30,
                                       .jitter_deg = 6.0, .seed = 4});
  std::size_t checked = 0, correct = 0;
  for (std::size_t f = 0; f < 800; f += 13) {
    if (st.in_transition[f]) continue;
    const auto& targets =
        st.phase_structures[static_cast<std::size_t>(st.phase[f])];
    for (std::size_t r = 0; r < 40; ++r) {
      ++checked;
      correct += st.trajectory.structure(f, r) == targets[r];
    }
  }
  // With 6-deg jitter, the overwhelming majority must classify correctly.
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(checked), 0.9);
}

TEST(Synthetic, ConsecutivePhasesDifferInSomeResidues) {
  const auto st = generate_trajectory({.residues = 50, .frames = 300,
                                       .phases = 4, .transition_frames = 10,
                                       .change_fraction = 0.3, .seed = 5});
  for (std::size_t p = 1; p < 4; ++p) {
    std::size_t diff = 0;
    for (std::size_t r = 0; r < 50; ++r) {
      diff += st.phase_structures[p][r] != st.phase_structures[p - 1][r];
    }
    EXPECT_GE(diff, 1u);
    EXPECT_LE(diff, 20u);  // at most change_fraction worth of flips
  }
}

TEST(Synthetic, DeterministicInSeed) {
  const SyntheticTrajectoryConfig cfg{.residues = 15, .frames = 100,
                                      .phases = 2, .transition_frames = 10,
                                      .seed = 6};
  const auto a = generate_trajectory(cfg);
  const auto b = generate_trajectory(cfg);
  EXPECT_EQ(a.phase, b.phase);
  for (std::size_t f = 0; f < 100; ++f) {
    for (std::size_t r = 0; r < 15; ++r) {
      EXPECT_DOUBLE_EQ(a.trajectory.phi(f, r), b.trajectory.phi(f, r));
    }
  }
}

TEST(Synthetic, DegenerateConfigsThrow) {
  EXPECT_THROW(generate_trajectory({.residues = 0}), Error);
  EXPECT_THROW(generate_trajectory({.residues = 5, .frames = 1}), Error);
  EXPECT_THROW(
      generate_trajectory({.residues = 5, .frames = 50, .phases = 10,
                           .transition_frames = 20}),
      Error);
}

TEST(ModelLibrary, MatchesTableThreeEnvelope) {
  // Table 3: residues in [58, 747], mean 193 +/- 145; frames in
  // [2000, 20000], mean ~9779.
  const auto lib = make_model_library(42);
  ASSERT_EQ(lib.size(), 31u);
  stats::OnlineMoments residues, frames;
  for (const auto& cfg : lib) {
    EXPECT_GE(cfg.residues, 58u);
    EXPECT_LE(cfg.residues, 747u);
    EXPECT_GE(cfg.frames, 2000u);
    EXPECT_LE(cfg.frames, 20000u);
    residues.add(static_cast<double>(cfg.residues));
    frames.add(static_cast<double>(cfg.frames));
  }
  EXPECT_NEAR(residues.mean(), 193.0, 90.0);
  EXPECT_NEAR(frames.mean(), 9779.0, 2500.0);
}

TEST(ModelLibrary, SeedsAreDistinct) {
  const auto lib = make_model_library(7);
  std::set<std::uint64_t> seeds;
  for (const auto& cfg : lib) seeds.insert(cfg.seed);
  EXPECT_EQ(seeds.size(), lib.size());
}

}  // namespace
}  // namespace keybin2::md
