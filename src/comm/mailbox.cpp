#include "comm/mailbox.hpp"

#include <sstream>

namespace keybin2::comm {

std::string abandoned_message(int self, const char* op, int peer, int tag) {
  std::ostringstream os;
  os << "rank " << self << " " << op;
  if (peer >= 0) {
    os << "(peer=" << peer << ", tag=" << tag << ")";
  } else {
    os << "()";
  }
  os << " abandoned: survivor agreement in progress";
  return os.str();
}

std::string send_departed_message(int self, int dest, int tag) {
  std::ostringstream os;
  os << "rank " << self << " send(peer=" << dest << ", tag=" << tag
     << ") aborted: rank " << dest << " left the group";
  return os.str();
}

std::string recv_departed_message(int self, int src, int tag) {
  std::ostringstream os;
  os << "rank " << self << " recv(peer=" << src << ", tag=" << tag
     << ") will never complete: rank " << src << " left the group";
  return os.str();
}

std::string rank_failed_prefix(const char* op, int self, int peer, int tag) {
  std::ostringstream os;
  os << "rank " << self << " " << op;
  if (peer >= 0) os << "(peer=" << peer << ", tag=" << tag << ")";
  os << " aborted:";
  return os.str();
}

void throw_recv_timeout(int self, int src, int tag, double elapsed_seconds) {
  std::ostringstream os;
  os << "rank " << self << " recv(peer=" << src << ", tag=" << tag
     << ") timed out after " << elapsed_seconds << "s";
  throw TimeoutError(os.str(), self, src, tag, elapsed_seconds);
}

void throw_barrier_timeout(int self, double elapsed_seconds) {
  std::ostringstream os;
  os << "rank " << self << " barrier() timed out after " << elapsed_seconds
     << "s";
  throw TimeoutError(os.str(), self, /*src=*/-1, /*tag=*/-1, elapsed_seconds);
}

void throw_agree_timeout(int self, double elapsed_seconds) {
  std::ostringstream os;
  os << "rank " << self << " agree_survivors() timed out after "
     << elapsed_seconds << "s waiting for the live ranks to converge";
  throw TimeoutError(os.str(), self, /*src=*/-1, /*tag=*/-1, elapsed_seconds);
}

}  // namespace keybin2::comm
