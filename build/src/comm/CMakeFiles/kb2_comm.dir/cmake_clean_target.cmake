file(REMOVE_RECURSE
  "libkb2_comm.a"
)
