#include "baselines/disjoint_set.hpp"

#include <numeric>
#include <unordered_map>

namespace keybin2::baselines {

DisjointSet::DisjointSet(std::size_t n) : parent_(n), rank_(n, 0) {
  std::iota(parent_.begin(), parent_.end(), std::size_t{0});
}

std::size_t DisjointSet::find(std::size_t x) {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool DisjointSet::unite(std::size_t a, std::size_t b) {
  a = find(a);
  b = find(b);
  if (a == b) return false;
  if (rank_[a] < rank_[b]) std::swap(a, b);
  parent_[b] = a;
  if (rank_[a] == rank_[b]) ++rank_[a];
  return true;
}

std::size_t DisjointSet::count_sets() {
  std::size_t count = 0;
  for (std::size_t i = 0; i < parent_.size(); ++i) {
    if (find(i) == i) ++count;
  }
  return count;
}

std::vector<int> DisjointSet::labels() {
  std::vector<int> out(parent_.size());
  std::unordered_map<std::size_t, int> ids;
  for (std::size_t i = 0; i < parent_.size(); ++i) {
    const auto root = find(i);
    auto [it, inserted] = ids.try_emplace(root, static_cast<int>(ids.size()));
    out[i] = it->second;
  }
  return out;
}

}  // namespace keybin2::baselines
