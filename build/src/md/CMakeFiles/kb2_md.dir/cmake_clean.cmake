file(REMOVE_RECURSE
  "CMakeFiles/kb2_md.dir/builder.cpp.o"
  "CMakeFiles/kb2_md.dir/builder.cpp.o.d"
  "CMakeFiles/kb2_md.dir/fingerprint.cpp.o"
  "CMakeFiles/kb2_md.dir/fingerprint.cpp.o.d"
  "CMakeFiles/kb2_md.dir/geometry.cpp.o"
  "CMakeFiles/kb2_md.dir/geometry.cpp.o.d"
  "CMakeFiles/kb2_md.dir/insitu.cpp.o"
  "CMakeFiles/kb2_md.dir/insitu.cpp.o.d"
  "CMakeFiles/kb2_md.dir/kabsch.cpp.o"
  "CMakeFiles/kb2_md.dir/kabsch.cpp.o.d"
  "CMakeFiles/kb2_md.dir/ramachandran.cpp.o"
  "CMakeFiles/kb2_md.dir/ramachandran.cpp.o.d"
  "CMakeFiles/kb2_md.dir/stability.cpp.o"
  "CMakeFiles/kb2_md.dir/stability.cpp.o.d"
  "CMakeFiles/kb2_md.dir/synthetic.cpp.o"
  "CMakeFiles/kb2_md.dir/synthetic.cpp.o.d"
  "CMakeFiles/kb2_md.dir/trajectory.cpp.o"
  "CMakeFiles/kb2_md.dir/trajectory.cpp.o.d"
  "libkb2_md.a"
  "libkb2_md.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kb2_md.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
