file(REMOVE_RECURSE
  "CMakeFiles/test_dbscan.dir/test_dbscan.cpp.o"
  "CMakeFiles/test_dbscan.dir/test_dbscan.cpp.o.d"
  "test_dbscan"
  "test_dbscan.pdb"
  "test_dbscan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dbscan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
