
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/md/builder.cpp" "src/md/CMakeFiles/kb2_md.dir/builder.cpp.o" "gcc" "src/md/CMakeFiles/kb2_md.dir/builder.cpp.o.d"
  "/root/repo/src/md/fingerprint.cpp" "src/md/CMakeFiles/kb2_md.dir/fingerprint.cpp.o" "gcc" "src/md/CMakeFiles/kb2_md.dir/fingerprint.cpp.o.d"
  "/root/repo/src/md/geometry.cpp" "src/md/CMakeFiles/kb2_md.dir/geometry.cpp.o" "gcc" "src/md/CMakeFiles/kb2_md.dir/geometry.cpp.o.d"
  "/root/repo/src/md/insitu.cpp" "src/md/CMakeFiles/kb2_md.dir/insitu.cpp.o" "gcc" "src/md/CMakeFiles/kb2_md.dir/insitu.cpp.o.d"
  "/root/repo/src/md/kabsch.cpp" "src/md/CMakeFiles/kb2_md.dir/kabsch.cpp.o" "gcc" "src/md/CMakeFiles/kb2_md.dir/kabsch.cpp.o.d"
  "/root/repo/src/md/ramachandran.cpp" "src/md/CMakeFiles/kb2_md.dir/ramachandran.cpp.o" "gcc" "src/md/CMakeFiles/kb2_md.dir/ramachandran.cpp.o.d"
  "/root/repo/src/md/stability.cpp" "src/md/CMakeFiles/kb2_md.dir/stability.cpp.o" "gcc" "src/md/CMakeFiles/kb2_md.dir/stability.cpp.o.d"
  "/root/repo/src/md/synthetic.cpp" "src/md/CMakeFiles/kb2_md.dir/synthetic.cpp.o" "gcc" "src/md/CMakeFiles/kb2_md.dir/synthetic.cpp.o.d"
  "/root/repo/src/md/trajectory.cpp" "src/md/CMakeFiles/kb2_md.dir/trajectory.cpp.o" "gcc" "src/md/CMakeFiles/kb2_md.dir/trajectory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kb2_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/kb2_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/kb2_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/kb2_comm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
