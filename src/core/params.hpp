// Tuning parameters for KeyBin2 (paper §3).
//
// KeyBin2 is non-parametric in the statistical sense — it is never told the
// number of clusters — but it has a small set of structural knobs, all with
// paper-faithful defaults. Ablation benches flip `use_projection` and
// `use_discrete_opt` to recover KeyBin-v1 behaviour.
#pragma once

#include <cstddef>
#include <cstdint>

#include "comm/recovery.hpp"

namespace keybin2::core {

/// Histogram smoothing used by the partitioner. The paper's method is the
/// moving average + local regression (§3.2); the Gaussian KDE it compares
/// against is available for the smoothing ablation ("our smoothing
/// technique is much faster" than KDE, with similar accuracy).
enum class Smoothing {
  kMovingAverage,
  kKernelDensity,
};

/// How ranks exchange histograms. §3 step 3: the merge "does not
/// necessarily have to be made to a central authority. The algorithm works
/// as well for a ring topology."
enum class Topology {
  kTree,  // binomial-tree reduce + broadcast (MPI-style allreduce)
  kRing,  // ring pass: each rank adds its histograms and forwards
};

/// How much of each rank's histogram content crosses the wire during the
/// merge (DESIGN.md §9). Dense ships every bin; sparse lets the transport
/// pick per-block dense/sparse encodings (bit-identical to dense); coreset
/// ships a weighted, seeded sample of the occupied bins under a hard
/// per-message size cap (`coreset_max_cells`) — sublinear traffic, bounded
/// error. Auto starts on the sparse plane and switches to coreset once the
/// observed merged density shows sparse re-densifying.
enum class CommMode {
  kDense,
  kSparse,
  kCoreset,
  kAuto,
};

struct Params {
  /// Deepest key level d_max; depth d has 2^d bins. The partitioner sweeps
  /// depths [min_depth, max_depth] and the subspace assessment picks the
  /// winner (paper: "2 to 4 histograms per dimension suffice").
  int max_depth = 7;
  int min_depth = 3;

  /// Bootstrap trials t: independent random projections evaluated with the
  /// histogram-space Calinski–Harabasz index (§3.3).
  int bootstrap_trials = 8;

  /// Projected dimensionality N_rp; 0 selects the paper's rule
  /// max(2, round(1.5 * ln N)).
  int n_rp = 0;

  /// A projected dimension is collapsed when its histogram is statistically
  /// indistinguishable from a single Gaussian (no multimodal structure):
  /// KS distance below this threshold (§3.1's KS-based collapsing).
  double collapse_threshold = 0.08;

  /// Minimum mode/valley prominence for the discrete-optimization
  /// partitioner, as a fraction of the smoothed histogram's peak density.
  double min_prominence = 0.04;

  /// Cells holding fewer than this fraction of the points are absorbed into
  /// the nearest dense cell at assignment time (outlier absorption). Kept
  /// small so KeyBin2 still reports more clusters than ground truth, as in
  /// the paper's Tables 1-2.
  double min_cluster_fraction = 0.001;

  /// Base seed for projection matrices and bootstrapping.
  std::uint64_t seed = 42;

  /// Ablations: identity projection reproduces KeyBin v1's axis-aligned
  /// binning; disabling discrete optimization falls back to the v1 density
  /// threshold heuristic (with `v1_density_threshold`).
  bool use_projection = true;
  bool use_discrete_opt = true;
  double v1_density_threshold = 0.05;

  /// Partitioner smoothing (moving average is the paper's method).
  Smoothing smoothing = Smoothing::kMovingAverage;

  /// Extension: choose the key depth independently PER DIMENSION (each
  /// dimension keeps the depth whose partition maximizes its own 1-D
  /// histogram-space CH) instead of sweeping one global depth. The paper
  /// keeps "at most d_max binning histograms" per dimension and notes 2-4
  /// usually suffice — nothing forces all dimensions to agree.
  bool per_dimension_depth = false;

  /// Histogram-exchange topology (§3 step 3).
  Topology topology = Topology::kTree;

  /// Histogram-merge communication mode (DESIGN.md §9). kAuto is
  /// conservative: it reproduces the sparse plane bit-for-bit unless the
  /// previous trial's merged histogram was dense enough that sparse
  /// encoding has re-densified (global nnz >= 4 * coreset_max_cells), so
  /// default-parameter fits keep their pinned fingerprints.
  CommMode comm_mode = CommMode::kAuto;

  /// Coreset plane: hard cap on the number of weighted cells any single
  /// rank-to-rank message may carry. Every merge re-compresses to this cap
  /// before forwarding, so peak reduce traffic is O(coreset_max_cells) per
  /// hop regardless of histogram occupancy.
  std::size_t coreset_max_cells = 4096;

  /// Coreset plane accuracy knob: any bin holding at least
  /// `coreset_epsilon` of the total mass is carried through exactly (never
  /// sampled away). Internally clamped to 2/coreset_max_cells so the heavy
  /// set can occupy at most half the cap (size-cap proof, DESIGN.md §9).
  double coreset_epsilon = 0.001;

  /// Run the fit's project→key→bin hot path through the fused single-pass
  /// kernels (core/fused.hpp): bit-identical to the staged reference path —
  /// keys, histograms, and the final model match exactly — but with the
  /// per-key range checks and depth shifts hoisted out of the inner loop and
  /// one traversal instead of four. `false` selects the staged stage_project
  /// / stage_bin reference path (used by the equivalence property tests and
  /// as an escape hatch).
  bool use_fused_kernels = true;

  /// Fault tolerance: deadline, in seconds, for any recv/barrier inside the
  /// distributed stages to make progress before throwing a TimeoutError
  /// (0 = wait forever, the classic MPI behaviour). A lost or dropped
  /// message then surfaces as a recoverable error instead of a hang.
  double comm_timeout_seconds = 0.0;

  /// Fault tolerance: how many times fit()/refit() may restart after a
  /// recoverable comm failure (rank death -> shrink to the survivors and
  /// rerun; transient corruption -> rerun over the same group) before the
  /// error propagates.
  int max_shrink_retries = 2;

  /// Fault tolerance: retry pacing and respawn budget for the recovery
  /// ladder (comm/recovery.hpp). fit()/refit() sleep a deterministic
  /// backoff-with-jitter between retries, and exhausting
  /// `max_shrink_retries` raises a typed FitAbortedError instead of the
  /// bare triggering failure.
  comm::RecoveryPolicy recovery;
};

}  // namespace keybin2::core
