#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace keybin2::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0.0) {
  KB2_CHECK_MSG(hi > lo, "histogram range [" << lo << ", " << hi << "] empty");
  KB2_CHECK_MSG(bins >= 1, "histogram needs at least one bin");
}

std::size_t Histogram::bin_of(double x) const {
  if (x <= lo_) return 0;
  if (x >= hi_) return bins() - 1;
  const double t = (x - lo_) / (hi_ - lo_);
  auto b = static_cast<std::size_t>(t * static_cast<double>(bins()));
  return std::min(b, bins() - 1);
}

double Histogram::bin_center(std::size_t b) const {
  KB2_CHECK_MSG(b < bins(), "bin " << b << " out of " << bins());
  return lo_ + width() * (static_cast<double>(b) + 0.5);
}

double Histogram::total() const {
  return std::accumulate(counts_.begin(), counts_.end(), 0.0);
}

void Histogram::merge(const Histogram& other) {
  KB2_CHECK_MSG(other.bins() == bins() && other.lo_ == lo_ && other.hi_ == hi_,
                "merging histograms with different geometry");
  for (std::size_t i = 0; i < counts_.size(); ++i)
    counts_[i] += other.counts_[i];
}

std::vector<double> Histogram::normalized() const {
  std::vector<double> out(counts_.begin(), counts_.end());
  const double t = total();
  if (t > 0.0) {
    for (auto& c : out) c /= t;
  }
  return out;
}

void Histogram::set_counts(std::vector<double> counts) {
  KB2_CHECK_MSG(counts.size() == counts_.size(),
                "set_counts size " << counts.size() << " != " << counts_.size());
  counts_ = std::move(counts);
}

HierarchicalHistogram::HierarchicalHistogram(double lo, double hi,
                                             int max_depth)
    : lo_(lo), hi_(hi), max_depth_(max_depth) {
  KB2_CHECK_MSG(hi > lo, "range [" << lo << ", " << hi << "] empty");
  KB2_CHECK_MSG(max_depth >= 1 && max_depth <= 24,
                "max_depth " << max_depth << " out of [1, 24]");
  deepest_.assign(bins_at(max_depth), 0.0);
}

void HierarchicalHistogram::check_depth(int depth) const {
  KB2_CHECK_MSG(depth >= 1 && depth <= max_depth_,
                "depth " << depth << " out of [1, " << max_depth_ << "]");
}

std::size_t HierarchicalHistogram::bin_of(double x, int depth) const {
  check_depth(depth);
  const std::size_t nb = bins_at(depth);
  if (x <= lo_) return 0;
  if (x >= hi_) return nb - 1;
  const double t = (x - lo_) / (hi_ - lo_);
  auto b = static_cast<std::size_t>(t * static_cast<double>(nb));
  return std::min(b, nb - 1);
}

void HierarchicalHistogram::add(double x, double weight) {
  deepest_[bin_of(x, max_depth_)] += weight;
}

Histogram HierarchicalHistogram::level(int depth) const {
  check_depth(depth);
  Histogram h(lo_, hi_, bins_at(depth));
  const std::size_t children = bins_at(max_depth_ - depth);
  for (std::size_t b = 0; b < bins_at(depth); ++b) {
    double sum = 0.0;
    for (std::size_t c = 0; c < children; ++c) sum += deepest_[b * children + c];
    h.add_to_bin(b, sum);
  }
  return h;
}

void HierarchicalHistogram::set_deepest_counts(std::vector<double> counts) {
  KB2_CHECK_MSG(counts.size() == deepest_.size(),
                "deepest counts size " << counts.size() << " != "
                                       << deepest_.size());
  deepest_ = std::move(counts);
}

void HierarchicalHistogram::set_deepest_counts(std::span<const double> counts) {
  KB2_CHECK_MSG(counts.size() == deepest_.size(),
                "deepest counts size " << counts.size() << " != "
                                       << deepest_.size());
  deepest_.assign(counts.begin(), counts.end());
}

double HierarchicalHistogram::total() const {
  return std::accumulate(deepest_.begin(), deepest_.end(), 0.0);
}

void HierarchicalHistogram::merge(const HierarchicalHistogram& other) {
  KB2_CHECK_MSG(other.lo_ == lo_ && other.hi_ == hi_ &&
                    other.max_depth_ == max_depth_,
                "merging hierarchies with different geometry");
  for (std::size_t i = 0; i < deepest_.size(); ++i)
    deepest_[i] += other.deepest_[i];
}

void HierarchicalHistogram::expand_right() {
  const std::size_t nb = deepest_.size();
  // Collapse bin pairs into the left half; the right half covers new range.
  for (std::size_t i = 0; i < nb / 2; ++i)
    deepest_[i] = deepest_[2 * i] + deepest_[2 * i + 1];
  std::fill(deepest_.begin() + static_cast<std::ptrdiff_t>(nb / 2),
            deepest_.end(), 0.0);
  hi_ = lo_ + 2.0 * (hi_ - lo_);
}

void HierarchicalHistogram::expand_left() {
  const std::size_t nb = deepest_.size();
  // The old range becomes the right half of the doubled range: bin pairs
  // collapse into bins [nb/2, nb), and the left half covers new territory.
  std::vector<double> next(nb, 0.0);
  for (std::size_t i = 0; i < nb / 2; ++i)
    next[nb / 2 + i] = deepest_[2 * i] + deepest_[2 * i + 1];
  deepest_ = std::move(next);
  lo_ = hi_ - 2.0 * (hi_ - lo_);
}

Histogram rebin_proportional(const Histogram& src, double lo, double hi,
                             std::size_t bins) {
  Histogram out(lo, hi, bins);
  const double out_width = out.width();
  for (std::size_t b = 0; b < src.bins(); ++b) {
    const double mass = src.count(b);
    if (mass == 0.0) continue;
    const double a0 = src.bin_left(b);
    const double a1 = a0 + src.width();
    // Clamp the source interval into the target range (mass outside piles
    // into the edge bins, mirroring bin_of's clamping).
    const double c0 = std::clamp(a0, lo, hi);
    const double c1 = std::clamp(a1, lo, hi);
    if (c1 <= c0) {
      out.add_to_bin(a1 <= lo ? 0 : bins - 1, mass);
      continue;
    }
    const double clamped_frac = (c1 - c0) / (a1 - a0);
    double left_spill = 0.0, right_spill = 0.0;
    if (a0 < lo) left_spill = (lo - a0) / (a1 - a0) * mass;
    if (a1 > hi) right_spill = (a1 - hi) / (a1 - a0) * mass;
    if (left_spill > 0.0) out.add_to_bin(0, left_spill);
    if (right_spill > 0.0) out.add_to_bin(bins - 1, right_spill);

    const double inner_mass = mass * clamped_frac;
    std::size_t t0 = static_cast<std::size_t>((c0 - lo) / out_width);
    std::size_t t1 = static_cast<std::size_t>((c1 - lo) / out_width);
    t0 = std::min(t0, bins - 1);
    t1 = std::min(t1, bins - 1);
    if (t0 == t1) {
      out.add_to_bin(t0, inner_mass);
    } else {
      for (std::size_t t = t0; t <= t1; ++t) {
        const double o0 = std::max(c0, lo + out_width * static_cast<double>(t));
        const double o1 =
            std::min(c1, lo + out_width * static_cast<double>(t + 1));
        if (o1 > o0) out.add_to_bin(t, inner_mass * (o1 - o0) / (c1 - c0));
      }
    }
  }
  return out;
}

HierarchicalHistogram rebin_hierarchy(const HierarchicalHistogram& src,
                                      double lo, double hi) {
  HierarchicalHistogram out(lo, hi, src.max_depth());
  const auto deepest = src.level(src.max_depth());
  const auto rebinned = rebin_proportional(
      deepest, lo, hi, HierarchicalHistogram::bins_at(src.max_depth()));
  std::vector<double> counts(rebinned.counts().begin(),
                             rebinned.counts().end());
  out.set_deepest_counts(std::move(counts));
  return out;
}

}  // namespace keybin2::stats
