#include "runtime/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace keybin2::runtime {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::comma() {
  if (after_key_) {
    after_key_ = false;
    return;  // value completes a "key": pair; no comma between them
  }
  if (!counts_.empty() && counts_.back() > 0) out_ += ',';
  if (!counts_.empty()) ++counts_.back();
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  counts_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  counts_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  counts_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  counts_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (!counts_.empty() && counts_.back() > 0) out_ += ',';
  if (!counts_.empty()) ++counts_.back();
  out_ += '"';
  out_ += json_escape(name);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  comma();
  out_ += '"';
  out_ += json_escape(s);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double d) {
  comma();
  if (!std::isfinite(d)) {
    out_ += "null";  // JSON has no Inf/NaN
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  comma();
  out_ += b ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  comma();
  out_ += json;
  return *this;
}

// ---- Validator ----

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }

  bool eat(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  bool string() {
    if (!eat('"')) return false;
    while (pos < text.size()) {
      char c = text[pos++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        if (pos >= text.size()) return false;
        char e = text[pos++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (pos >= text.size() ||
                !std::isxdigit(static_cast<unsigned char>(text[pos]))) {
              return false;
            }
            ++pos;
          }
        } else if (std::string_view("\"\\/bfnrt").find(e) ==
                   std::string_view::npos) {
          return false;
        }
      }
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = pos;
    eat('-');
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '+' || text[pos] == '-')) {
      ++pos;
    }
    if (pos == start) return false;
    char* end = nullptr;
    const std::string token(text.substr(start, pos - start));
    std::strtod(token.c_str(), &end);
    return end == token.c_str() + token.size();
  }

  bool value() {
    skip_ws();
    if (pos >= text.size()) return false;
    switch (text[pos]) {
      case '{': {
        ++pos;
        skip_ws();
        if (eat('}')) return true;
        for (;;) {
          skip_ws();
          if (!string()) return false;
          skip_ws();
          if (!eat(':')) return false;
          if (!value()) return false;
          skip_ws();
          if (eat('}')) return true;
          if (!eat(',')) return false;
        }
      }
      case '[': {
        ++pos;
        skip_ws();
        if (eat(']')) return true;
        for (;;) {
          if (!value()) return false;
          skip_ws();
          if (eat(']')) return true;
          if (!eat(',')) return false;
        }
      }
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }
};

}  // namespace

bool json_validate(std::string_view text) {
  Parser p{text};
  if (!p.value()) return false;
  p.skip_ws();
  return p.pos == text.size();
}

}  // namespace keybin2::runtime
