file(REMOVE_RECURSE
  "CMakeFiles/test_binner.dir/test_binner.cpp.o"
  "CMakeFiles/test_binner.dir/test_binner.cpp.o.d"
  "test_binner"
  "test_binner.pdb"
  "test_binner[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_binner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
