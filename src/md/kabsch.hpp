// Optimal-superposition RMSD (Kabsch, via Horn's quaternion method).
//
// The paper's offline validation computes "the root mean squared deviation
// with respect to each frame in the trajectory"; for 3-D conformations the
// standard metric superimposes the structures first (remove rigid-body
// translation and rotation). Horn's method finds the optimal rotation as
// the top eigenvector of a 4x4 quaternion matrix — no 3x3 SVD needed.
#pragma once

#include <span>

#include "md/builder.hpp"
#include "md/geometry.hpp"

namespace keybin2::md {

/// Minimum RMSD between two equal-length 3-D point sets over all rigid
/// superpositions (rotation + translation; no reflection).
double kabsch_rmsd(std::span<const Vec3> p, std::span<const Vec3> q);

/// RMSD between two backbone conformations over all atoms (N, CA, C).
double backbone_rmsd(std::span<const BackboneResidue> a,
                     std::span<const BackboneResidue> b);

}  // namespace keybin2::md
