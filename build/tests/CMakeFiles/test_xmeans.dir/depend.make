# Empty dependencies file for test_xmeans.
# This may be replaced when dependencies are built.
