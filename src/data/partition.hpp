// Row partitioning across ranks.
//
// The paper's setting: "The data is produced and stored on K MPI processes."
// These helpers describe the contiguous row range each rank owns and carve a
// dataset into per-rank shards (for tests that compare distributed runs with
// the serial reference on identical data).
#pragma once

#include <cstddef>
#include <vector>

#include "data/dataset.hpp"

namespace keybin2::data {

struct RowRange {
  std::size_t begin = 0;
  std::size_t end = 0;  // exclusive
  std::size_t count() const { return end - begin; }
};

/// Split `rows` rows into `ranks` contiguous, balanced ranges (sizes differ
/// by at most one; earlier ranks take the extras).
std::vector<RowRange> partition_rows(std::size_t rows, int ranks);

/// Shard a dataset into per-rank datasets along partition_rows().
std::vector<Dataset> shard(const Dataset& d, int ranks);

}  // namespace keybin2::data
