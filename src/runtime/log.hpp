// Structured event log for the runtime: leveled events with rank, shared
// monotonic timestamp, and key-value attribution, delivered to pluggable
// sinks.
//
// The fault-tolerance path emits through this: timeouts, CRC failures,
// survivor shrinks, fit retries, and checkpoint writes/restores become
// machine-readable events instead of silent control flow. One JSONL line per
// event:
//
//   {"t_ns":123456,"rank":2,"level":"warn","event":"fit_retry",
//    "attrs":{"kind":"timeout","attempt":"1"}}
//
// Sinks must be thread-safe: rank threads of one ThreadComm group commonly
// share a single JsonlFileSink. An EventLog with no sink attached costs one
// branch per emit, so leaving logging wired in release paths is free.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace keybin2::runtime {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

const char* log_level_name(LogLevel level);

struct LogEvent {
  LogLevel level = LogLevel::kInfo;
  std::int64_t t_ns = 0;  // shared now_ns() clock
  int rank = 0;
  std::string name;
  std::vector<std::pair<std::string, std::string>> attrs;

  /// The event as one JSONL line (no trailing newline).
  std::string to_json() const;
};

/// Receives every event at or above the log's threshold. Implementations
/// must tolerate concurrent emit() calls from different rank threads.
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void emit(const LogEvent& event) = 0;
};

/// Collects events in memory; for tests.
class MemorySink final : public LogSink {
 public:
  void emit(const LogEvent& event) override;

  std::vector<LogEvent> events() const;

  /// Events with the given name, in emission order.
  std::vector<LogEvent> events_named(const std::string& name) const;

 private:
  mutable std::mutex mu_;
  std::vector<LogEvent> events_;
};

/// Appends one JSON line per event to a file. Open once, share across the
/// rank contexts of a run.
///
/// With `append = true` the file is opened in O_APPEND mode and left as-is:
/// process-backed ranks each open their own append-mode sink on the same
/// path (the parent truncates the file once before forking), and because
/// every emit flushes exactly one line per write(2), lines from different
/// processes interleave without tearing.
/// Size-based rotation: when `max_bytes > 0` and an emit would push the
/// current file past it, the file is closed, renamed to `<path>.1`
/// (replacing any previous generation), and a fresh `<path>` is opened —
/// so a long soak keeps at most two generations (~2 * max_bytes) on disk.
/// Rotation is skipped in append mode: multiple processes share that file
/// and an uncoordinated rename would orphan their handles.
class JsonlFileSink final : public LogSink {
 public:
  explicit JsonlFileSink(const std::string& path, bool append = false,
                         std::size_t max_bytes = 0);
  ~JsonlFileSink() override;

  bool ok() const { return file_ != nullptr; }
  /// Times the sink rolled `<path>` over to `<path>.1`.
  std::uint64_t rotations() const { return rotations_; }

  void emit(const LogEvent& event) override;

 private:
  std::mutex mu_;
  std::FILE* file_ = nullptr;
  std::string path_;
  bool append_ = false;
  std::size_t max_bytes_ = 0;
  std::size_t written_ = 0;
  std::uint64_t rotations_ = 0;
};

/// Per-rank logging front end. Cheap to construct; emits only when a sink is
/// attached and the event's level passes the threshold.
class EventLog {
 public:
  explicit EventLog(int rank = 0) : rank_(rank) {}

  void set_rank(int rank) { rank_ = rank; }
  void set_sink(std::shared_ptr<LogSink> sink) { sink_ = std::move(sink); }
  void set_level(LogLevel level) { level_ = level; }

  bool enabled(LogLevel level) const {
    return sink_ != nullptr && static_cast<int>(level) >=
                                   static_cast<int>(level_);
  }

  /// Emit `name` at `level` with key-value attributes:
  ///   log.event(LogLevel::kWarn, "fit_retry", {{"kind", "timeout"}});
  void event(LogLevel level, std::string_view name,
             std::vector<std::pair<std::string, std::string>> attrs = {});

  void info(std::string_view name,
            std::vector<std::pair<std::string, std::string>> attrs = {}) {
    event(LogLevel::kInfo, name, std::move(attrs));
  }
  void warn(std::string_view name,
            std::vector<std::pair<std::string, std::string>> attrs = {}) {
    event(LogLevel::kWarn, name, std::move(attrs));
  }
  void error(std::string_view name,
             std::vector<std::pair<std::string, std::string>> attrs = {}) {
    event(LogLevel::kError, name, std::move(attrs));
  }

 private:
  int rank_;
  LogLevel level_ = LogLevel::kDebug;
  std::shared_ptr<LogSink> sink_;
};

}  // namespace keybin2::runtime
