file(REMOVE_RECURSE
  "../bench/fig2_assessment"
  "../bench/fig2_assessment.pdb"
  "CMakeFiles/fig2_assessment.dir/fig2_assessment.cpp.o"
  "CMakeFiles/fig2_assessment.dir/fig2_assessment.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_assessment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
