// Micro benchmarks (google-benchmark) for KeyBin2's kernels — the pieces
// whose complexity §3.4 analyses:
//   * key assignment         O(M * N_rp * log B)
//   * histogram construction O(M * N_rp)
//   * random projection      O(M * N * N_rp)
//   * smoothing/partitioning O(N_rp * B * w)
//   * histogram-space CH     O(B) — independent of M
//   * collectives            O(message size), the only communication
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>

#include "bench/bench_util.hpp"
#include "comm/launch.hpp"
#include "common/rng.hpp"
#include "core/assess.hpp"
#include "core/binner.hpp"
#include "core/cells.hpp"
#include "core/keybin2.hpp"
#include "core/partitioner.hpp"
#include "core/projection.hpp"
#include "data/gaussian_mixture.hpp"

// Global-allocation tally for BM_ReduceSteadyStateAllocs: every heap
// allocation in the process is counted while g_count_allocs is on. The
// overrides replace the global operators for this binary only; counting is
// a relaxed atomic increment, negligible next to malloc itself.
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<bool> g_count_allocs{false};

void* counted_alloc(std::size_t n) noexcept {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  return std::malloc(n ? n : 1);
}

void* counted_aligned_alloc(std::size_t n, std::size_t align) noexcept {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  const std::size_t rounded = (n + align - 1) / align * align;
  return std::aligned_alloc(align, rounded ? rounded : align);
}
}  // namespace

void* operator new(std::size_t n) {
  if (void* p = counted_alloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  if (void* p = counted_alloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  return counted_alloc(n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return counted_alloc(n);
}
void* operator new(std::size_t n, std::align_val_t al) {
  if (void* p = counted_aligned_alloc(n, static_cast<std::size_t>(al))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t al) {
  if (void* p = counted_aligned_alloc(n, static_cast<std::size_t>(al))) {
    return p;
  }
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace keybin2;

Matrix random_points(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (auto& v : m.flat()) v = rng.normal();
  return m;
}

void BM_KeyAssignment(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto points = random_points(m, 8, 1);
  const std::vector<core::Range> ranges(8, core::Range{-5.0, 5.0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compute_keys(points, ranges, 7));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(m * 8) *
                          state.iterations());
}
BENCHMARK(BM_KeyAssignment)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_HistogramBuild(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto points = random_points(m, 8, 2);
  const std::vector<core::Range> ranges(8, core::Range{-5.0, 5.0});
  const auto keys = core::compute_keys(points, ranges, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::build_histograms(keys, ranges));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(m * 8) *
                          state.iterations());
}
BENCHMARK(BM_HistogramBuild)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_RandomProjection(benchmark::State& state) {
  const auto dims = static_cast<std::size_t>(state.range(0));
  const auto points = random_points(2000, dims, 3);
  const auto a =
      core::make_projection_matrix(dims, core::choose_n_rp(dims), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::project(points, a));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(2000 * dims * a.cols()) * state.iterations());
}
BENCHMARK(BM_RandomProjection)->Arg(20)->Arg(80)->Arg(320)->Arg(1280);

void BM_PartitionHistogram(benchmark::State& state) {
  const auto bins = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  stats::Histogram h(0.0, 1.0, bins);
  for (int i = 0; i < 50000; ++i) {
    h.add(rng.normal(i % 2 ? 0.3 : 0.7, 0.07));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::partition_discrete_opt(h.counts(), 0.04));
  }
}
BENCHMARK(BM_PartitionHistogram)->Arg(32)->Arg(128)->Arg(1024);

void BM_HistogramCalinskiHarabasz(benchmark::State& state) {
  // Cost must not depend on the number of points — only on bins/cells.
  Rng rng(6);
  std::vector<stats::Histogram> hists;
  std::vector<core::DimensionPartition> partitions;
  for (int j = 0; j < 8; ++j) {
    stats::Histogram h(0.0, 1.0, 128);
    for (int i = 0; i < 10000; ++i) {
      h.add(rng.normal(i % 2 ? 0.3 : 0.7, 0.07));
    }
    core::DimensionPartition p;
    p.bins = 128;
    p.cuts = {64};
    hists.push_back(std::move(h));
    partitions.push_back(std::move(p));
  }
  std::vector<core::Cell> cells;
  for (std::uint32_t c = 0; c < 16; ++c) {
    core::Cell cell;
    for (int j = 0; j < 8; ++j) cell.coord.push_back((c >> (j % 4)) & 1);
    cell.density = 100.0 + c;
    cells.push_back(std::move(cell));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::histogram_calinski_harabasz(hists, partitions, cells));
  }
}
BENCHMARK(BM_HistogramCalinskiHarabasz);

void BM_AllreduceHistograms(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  // One KeyBin2 histogram exchange: n_rp=11 dims x 128 bins of doubles.
  const std::size_t len = 11 * 128;
  for (auto _ : state) {
    comm::run_ranks(ranks, [&](comm::Communicator& c) {
      std::vector<double> local(len, static_cast<double>(c.rank()));
      benchmark::DoNotOptimize(c.allreduce(local, comm::ReduceOp::kSum));
    });
  }
}
BENCHMARK(BM_AllreduceHistograms)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_ReduceSteadyStateAllocs(benchmark::State& state) {
  // Satellite contract: the reduce hot loop holds pooled scratch
  // (block_scratch_ / recv_block_scratch_ / frame pools), so steady-state
  // allreduces must not allocate per round beyond the caller-visible result
  // vector. The budget below is calibrated ~2x the pooled steady state;
  // losing the pooling (a fresh ByteWriter per segment per round) blows
  // through it by an order of magnitude, and this harness then fails hard.
  constexpr int kRanks = 8;
  constexpr std::size_t kLen = 16 * 4096;
  constexpr int kOps = 8;
  constexpr double kAllocBudgetPerReducePerRank = 8.0;
  std::uint64_t allocs = 0;
  for (auto _ : state) {
    comm::run_ranks(kRanks, [&](comm::Communicator& c) {
      std::vector<double> local(kLen, 0.0);
      for (int k = 0; k < 32; ++k) {
        local[static_cast<std::size_t>((c.rank() * 977 + k * 131) % kLen)] =
            1.0;
      }
      // Two warmup rounds grow every pool to its steady-state capacity.
      for (int i = 0; i < 2; ++i) {
        benchmark::DoNotOptimize(c.allreduce(
            local, comm::ReduceOp::kSum, comm::AllreduceAlgo::kRecursiveHalving));
      }
      c.barrier();
      if (c.rank() == 0) {
        g_alloc_count.store(0);
        g_count_allocs.store(true);
      }
      c.barrier();  // every rank is between the toggles only via barriers
      for (int i = 0; i < kOps; ++i) {
        benchmark::DoNotOptimize(c.allreduce(
            local, comm::ReduceOp::kSum, comm::AllreduceAlgo::kRecursiveHalving));
      }
      c.barrier();
      if (c.rank() == 0) {
        g_count_allocs.store(false);
        allocs = g_alloc_count.load();
      }
      c.barrier();  // teardown (thread join, vector frees) stays uncounted
    });
  }
  const double per_op =
      static_cast<double>(allocs) / (kOps * static_cast<double>(kRanks));
  state.counters["allocs_per_reduce_per_rank"] = per_op;
  if (per_op > kAllocBudgetPerReducePerRank) {
    std::fprintf(stderr,
                 "BM_ReduceSteadyStateAllocs: %.1f allocs per reduce per rank "
                 "exceeds budget %.1f — reduce hot loop is allocating\n",
                 per_op, kAllocBudgetPerReducePerRank);
    std::exit(1);
  }
}
BENCHMARK(BM_ReduceSteadyStateAllocs)->Iterations(1);

void BM_EndToEndFit(benchmark::State& state) {
  const auto dims = static_cast<std::size_t>(state.range(0));
  const auto spec = data::make_paper_mixture(dims, 4, 7);
  const auto d = data::sample(spec, 5000, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::fit(d.points));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(5000) *
                          state.iterations());
}
BENCHMARK(BM_EndToEndFit)->Arg(20)->Arg(320)->Unit(benchmark::kMillisecond);

void BM_EndToEndFitInstrumented(benchmark::State& state) {
  // The same fit with the full observability stack on: comm probe, metrics
  // registry, timeline capture. Compare against BM_EndToEndFit at the same
  // Arg — the budget is <5% overhead enabled; disabled costs one null-probe
  // branch per send/recv and shows up as no measurable delta.
  const auto dims = static_cast<std::size_t>(state.range(0));
  const auto spec = data::make_paper_mixture(dims, 4, 7);
  const auto d = data::sample(spec, 5000, 8);
  const core::Params params;
  for (auto _ : state) {
    runtime::Context ctx(params.seed);
    ctx.enable_timeline();  // implies enable_comm_metrics()
    benchmark::DoNotOptimize(core::fit(ctx, d.points, params));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(5000) *
                          state.iterations());
}
BENCHMARK(BM_EndToEndFitInstrumented)
    ->Arg(20)
    ->Arg(320)
    ->Unit(benchmark::kMillisecond);

}  // namespace

// Hand-rolled main instead of BENCHMARK_MAIN(): after the benchmark run we
// emit BENCH_micro_benchmarks.json like every other harness (the merged
// metrics come from the Reporter's probe fit — google-benchmark owns argv,
// so the bench options stay at their defaults).
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  bench::Options opt;
  opt.name = "micro_benchmarks";
  bench::Reporter::global().write(opt);
  return 0;
}
