#include "core/projection.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace keybin2::core {
namespace {

TEST(ChooseNrp, FollowsPaperRule) {
  // N_rp = max(2, round(1.5 ln N)), capped at N.
  EXPECT_EQ(choose_n_rp(20), 4);     // 1.5 ln 20 = 4.49
  EXPECT_EQ(choose_n_rp(80), 7);     // 6.57
  EXPECT_EQ(choose_n_rp(320), 9);    // 8.65
  EXPECT_EQ(choose_n_rp(1280), 11);  // 10.73
}

TEST(ChooseNrp, SmallInputsAreCappedAndFloored) {
  EXPECT_EQ(choose_n_rp(1), 1);  // cap at N
  EXPECT_EQ(choose_n_rp(2), 2);
  EXPECT_EQ(choose_n_rp(4), 2);  // floor at 2
  EXPECT_THROW(choose_n_rp(0), Error);
}

TEST(ProjectionMatrix, ColumnsAreUnitVectors) {
  const auto a = make_projection_matrix(100, 7, 42);
  EXPECT_EQ(a.rows(), 100u);
  EXPECT_EQ(a.cols(), 7u);
  for (std::size_t j = 0; j < a.cols(); ++j) {
    double norm2 = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i) norm2 += a(i, j) * a(i, j);
    EXPECT_NEAR(norm2, 1.0, 1e-12);
  }
}

TEST(ProjectionMatrix, HighDimColumnsAreNearOrthogonal) {
  // §3.1: "In high dimensional spaces, there are a large number of
  // orthogonal vectors" — random unit columns should be near orthogonal.
  const auto a = make_projection_matrix(2000, 6, 7);
  for (std::size_t j = 0; j < a.cols(); ++j) {
    for (std::size_t k = j + 1; k < a.cols(); ++k) {
      double dot = 0.0;
      for (std::size_t i = 0; i < a.rows(); ++i) dot += a(i, j) * a(i, k);
      EXPECT_LT(std::fabs(dot), 0.1) << "columns " << j << ", " << k;
    }
  }
}

TEST(ProjectionMatrix, DeterministicInSeed) {
  const auto a = make_projection_matrix(10, 3, 5);
  const auto b = make_projection_matrix(10, 3, 5);
  EXPECT_TRUE(a == b);
  const auto c = make_projection_matrix(10, 3, 6);
  EXPECT_FALSE(a == c);
}

TEST(Project, MatchesPerPointProjection) {
  Rng rng(11);
  Matrix points(20, 8);
  for (auto& v : points.flat()) v = rng.normal();
  const auto a = make_projection_matrix(8, 3, 13);
  const auto projected = project(points, a);
  ASSERT_EQ(projected.rows(), 20u);
  ASSERT_EQ(projected.cols(), 3u);
  std::vector<double> out(3);
  for (std::size_t i = 0; i < 20; ++i) {
    project_point(points.row(i), a, out);
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(projected(i, j), out[j], 1e-12);
    }
  }
}

TEST(Project, EqualsMatmul) {
  Rng rng(17);
  Matrix points(15, 6);
  for (auto& v : points.flat()) v = rng.uniform(-2.0, 2.0);
  const auto a = make_projection_matrix(6, 2, 19);
  const auto p1 = project(points, a);
  const auto p2 = matmul(points, a);
  for (std::size_t i = 0; i < p1.rows(); ++i) {
    for (std::size_t j = 0; j < p1.cols(); ++j) {
      EXPECT_NEAR(p1(i, j), p2(i, j), 1e-12);
    }
  }
}

TEST(Project, PreservesLengthApproximately) {
  // With N_rp = N the random rotation is nearly an isometry; with fewer
  // dims, projected length can only shrink (columns are unit vectors).
  Rng rng(23);
  Matrix points(50, 64);
  for (auto& v : points.flat()) v = rng.normal();
  const auto a = make_projection_matrix(64, 8, 29);
  const auto projected = project(points, a);
  for (std::size_t i = 0; i < points.rows(); ++i) {
    double orig = 0.0, proj = 0.0;
    for (double v : points.row(i)) orig += v * v;
    for (double v : projected.row(i)) proj += v * v;
    EXPECT_LT(proj, orig * 1.5);
  }
}

TEST(Project, SinglePointShapeChecks) {
  const auto a = make_projection_matrix(4, 2, 31);
  std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  std::vector<double> out(3);  // wrong size
  EXPECT_THROW(project_point(x, a, out), Error);
}

TEST(Project, OrderingAlongColumnIsLinear) {
  // Points along a line map to a line: the relative ordering along any
  // projected dimension is monotone in the line parameter (the property §3.1
  // argues makes binning safe under projection).
  const auto a = make_projection_matrix(16, 4, 37);
  Matrix points(10, 16);
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = 0; j < 16; ++j) {
      points(i, j) = static_cast<double>(i) * 0.5;  // along the all-ones dir
    }
  }
  const auto projected = project(points, a);
  for (std::size_t j = 0; j < 4; ++j) {
    const bool increasing = projected(1, j) > projected(0, j);
    for (std::size_t i = 2; i < 10; ++i) {
      if (increasing) {
        EXPECT_GT(projected(i, j), projected(i - 1, j));
      } else {
        EXPECT_LT(projected(i, j), projected(i - 1, j));
      }
    }
  }
}

}  // namespace
}  // namespace keybin2::core
