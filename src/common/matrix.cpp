#include "common/matrix.hpp"

#include <algorithm>

namespace keybin2 {

void Matrix::append_row(std::span<const double> v) {
  if (rows_ == 0 && cols_ == 0) cols_ = v.size();
  KB2_CHECK_MSG(v.size() == cols_,
                "append_row length " << v.size() << " != cols " << cols_);
  data_.insert(data_.end(), v.begin(), v.end());
  ++rows_;
}

Matrix Matrix::slice_rows(std::size_t begin, std::size_t end) const {
  KB2_CHECK_MSG(begin <= end && end <= rows_,
                "slice [" << begin << ", " << end << ") of " << rows_);
  Matrix out(end - begin, cols_);
  std::copy(data_.begin() + static_cast<std::ptrdiff_t>(begin * cols_),
            data_.begin() + static_cast<std::ptrdiff_t>(end * cols_),
            out.data_.begin());
  return out;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  KB2_CHECK_MSG(a.cols() == b.rows(), "matmul shape mismatch: " << a.cols()
                                                                << " vs "
                                                                << b.rows());
  Matrix out(a.rows(), b.cols());
  const std::size_t m = a.rows(), n = a.cols(), p = b.cols();
  for (std::size_t i = 0; i < m; ++i) {
    auto out_row = out.row(i);
    auto a_row = a.row(i);
    for (std::size_t k = 0; k < n; ++k) {
      const double aik = a_row[k];
      if (aik == 0.0) continue;
      auto b_row = b.row(k);
      for (std::size_t j = 0; j < p; ++j) out_row[j] += aik * b_row[j];
    }
  }
  return out;
}

}  // namespace keybin2
