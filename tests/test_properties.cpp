// Property-based sweeps: pipeline invariants that must hold across the whole
// (dims, k, ranks, seed) grid, not just hand-picked scenarios.
#include <gtest/gtest.h>

#include <set>

#include <algorithm>

#include "comm/launch.hpp"
#include "common/rng.hpp"
#include "core/binner.hpp"
#include "core/keybin2.hpp"
#include "core/keys.hpp"
#include "data/gaussian_mixture.hpp"
#include "data/partition.hpp"
#include "stats/metrics.hpp"

namespace keybin2::core {
namespace {

// ---- Full pipeline across the (dims, k) grid ----

struct GridCase {
  std::size_t dims;
  std::size_t k;
};

class FitGrid : public ::testing::TestWithParam<GridCase> {};

TEST_P(FitGrid, InvariantsHoldOnSeparatedMixtures) {
  const auto [dims, k] = GetParam();
  // Separation 15 keeps every case in the separable regime the
  // invariants describe (crowded low-dim lattices genuinely overlap).
  const auto spec = data::make_paper_mixture(dims, k, 7 * dims + k, 15.0);
  const auto d = data::sample(spec, 800 * k, 11 * dims + k);
  const auto result = fit(d.points);

  // (1) Labels are dense, non-negative ids below the reported count.
  std::set<int> labels(result.labels.begin(), result.labels.end());
  for (int l : labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, result.n_clusters());
  }

  // (2) Non-parametric discovery: at least the true structure, at most a
  // bounded amount of outlier over-segmentation.
  EXPECT_GE(result.n_clusters(), static_cast<int>(k));
  EXPECT_LE(result.n_clusters(), static_cast<int>(4 * k + 8));

  // (3) Precision stays near 1 (the paper's signature: splits, not merges).
  const auto scores = stats::pairwise_scores(result.labels, d.labels);
  EXPECT_GT(scores.precision, 0.85) << "dims=" << dims << " k=" << k;
  EXPECT_GT(scores.f1, 0.7) << "dims=" << dims << " k=" << k;

  // (4) The model relabels its own training data identically.
  EXPECT_EQ(result.model.predict(d.points), result.labels);

  // (5) Serialization is behaviour-preserving.
  ByteWriter w;
  result.model.serialize(w);
  ByteReader r(w.bytes());
  const auto back = Model::deserialize(r);
  EXPECT_EQ(back.predict(d.points), result.labels);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FitGrid,
    ::testing::Values(GridCase{8, 2}, GridCase{32, 4}, GridCase{16, 2},
                      GridCase{16, 4}, GridCase{64, 3}, GridCase{64, 8},
                      GridCase{256, 4}, GridCase{256, 2}),
    [](const auto& info) {
      return "dims" + std::to_string(info.param.dims) + "_k" +
             std::to_string(info.param.k);
    });

// ---- Distributed invariance across rank counts AND data order ----

class RankInvariance : public ::testing::TestWithParam<int> {};

TEST_P(RankInvariance, ShardOrderDoesNotMatter) {
  // Histograms are sums: permuting which rank holds which shard must not
  // change the model (only the local label slices move around).
  const int ranks = GetParam();
  const auto spec = data::make_paper_mixture(12, 3, 31);
  const auto d = data::sample(spec, 300 * ranks, 32);
  auto shards = data::shard(d, ranks);

  auto model_score = [&](const std::vector<data::Dataset>& parts) {
    double score = 0.0;
    comm::run_ranks(ranks, [&](comm::Communicator& c) {
      const auto result =
          fit(c, parts[static_cast<std::size_t>(c.rank())].points);
      if (c.rank() == 0) score = result.model.score();
    });
    return score;
  };

  const double forward = model_score(shards);
  std::reverse(shards.begin(), shards.end());
  const double reversed = model_score(shards);
  EXPECT_DOUBLE_EQ(forward, reversed);
}

INSTANTIATE_TEST_SUITE_P(Ranks, RankInvariance, ::testing::Values(2, 3, 5));

// ---- Key-space properties across depths ----

class KeyDepthSweep : public ::testing::TestWithParam<int> {};

TEST_P(KeyDepthSweep, KeysPartitionTheRange) {
  const int depth = GetParam();
  const Range range{-7.0, 13.0};
  Rng rng(static_cast<std::uint64_t>(depth));
  std::uint32_t prev_key = 0;
  // Sorted random values get monotone keys covering only valid ids.
  std::vector<double> xs;
  for (int i = 0; i < 2000; ++i) xs.push_back(rng.uniform(-7.0, 13.0));
  std::sort(xs.begin(), xs.end());
  for (double x : xs) {
    const auto key = key_of(x, range, depth);
    EXPECT_LT(key, std::uint32_t{1} << depth);
    EXPECT_GE(key, prev_key);
    prev_key = key;
  }
}

TEST_P(KeyDepthSweep, HistogramMassMatchesKeyCounts) {
  const int depth = GetParam();
  Rng rng(100 + static_cast<std::uint64_t>(depth));
  Matrix points(500, 2);
  for (auto& v : points.flat()) v = rng.normal();
  const std::vector<Range> ranges(2, Range{-5.0, 5.0});
  const auto keys = compute_keys(points, ranges, depth);
  const auto hists = build_histograms(keys, ranges);
  for (std::size_t j = 0; j < 2; ++j) {
    const auto level = hists[j].level(depth);
    std::vector<double> direct(level.bins(), 0.0);
    for (std::size_t i = 0; i < 500; ++i) direct[keys.at(i, j)] += 1.0;
    for (std::size_t b = 0; b < level.bins(); ++b) {
      EXPECT_DOUBLE_EQ(level.count(b), direct[b]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, KeyDepthSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 12, 16));

// ---- Seed stability: different seeds, same qualitative answer ----

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, QualityIsSeedRobust) {
  const auto seed = GetParam();
  const auto spec = data::make_paper_mixture(24, 4, 51);
  const auto d = data::sample(spec, 4000, 52);
  Params params;
  params.seed = seed;
  const auto result = fit(d.points, params);
  const auto scores = stats::pairwise_scores(result.labels, d.labels);
  EXPECT_GT(scores.f1, 0.75) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1ULL, 1337ULL, 0xabcdefULL,
                                           987654321ULL));

}  // namespace
}  // namespace keybin2::core
