#!/usr/bin/env bash
# Tier-1 gate: configure, build, and run the test suite.
#
#   tools/check_tier1.sh           # full suite (what CI runs)
#   tools/check_tier1.sh --quick   # skip suites labelled `slow` (ctest -LE slow)
#   tools/check_tier1.sh --tsan    # ThreadSanitizer build, comm/fault suites only
#   tools/check_tier1.sh --asan    # AddressSanitizer build, comm/fault suites only
#   tools/check_tier1.sh --trace-smoke
#                                  # build, then run an instrumented 4-rank
#                                  # cluster and gate on the observability
#                                  # outputs: trace_check validates the Chrome
#                                  # trace JSON (>= 4 rank timelines, >= 1
#                                  # flow pair), and the printed report must
#                                  # carry non-empty metrics
#   tools/check_tier1.sh --bench-smoke
#                                  # build, then run bench/kernel_fusion at a
#                                  # small size (fast; the bench itself aborts
#                                  # on any fused-vs-staged mismatch) and gate
#                                  # on trace_check --bench validating the
#                                  # BENCH_kernel_fusion.json schema
#   tools/check_tier1.sh --analyze-smoke
#                                  # build, then run an instrumented 8-rank
#                                  # cluster and gate on the trace-analytics
#                                  # chain: trace_check validates the trace's
#                                  # flow-pairing/nesting invariants,
#                                  # kb2_analyze must report a critical path
#                                  # covering the wall, and trace_check
#                                  # --analysis validates the JSON report
#   tools/check_tier1.sh --proc-smoke
#                                  # build, then exercise the process-backed
#                                  # transport end to end: an 8-rank
#                                  # --backend proc fit whose merged trace
#                                  # must satisfy kb2_analyze, the honest
#                                  # SIGKILL-one-child recovery tests, and a
#                                  # thread-vs-proc fingerprint parity check
#   tools/check_tier1.sh --chaos-smoke
#                                  # build, then run the seeded chaos-soak
#                                  # engine (tools/kb2_soak) over a handful of
#                                  # fault schedules: every schedule must
#                                  # either converge to the fault-free fit
#                                  # fingerprint or end in a typed, attributed
#                                  # error — never a hang, never a silent
#                                  # wrong answer — and the emitted
#                                  # BENCH_chaos_soak.json must satisfy
#                                  # trace_check --soak (legal outcomes,
#                                  # recovery aggregates, acceptable == 1)
#   tools/check_tier1.sh --profile-smoke
#                                  # build, then run a profiled fit with a
#                                  # live telemetry segment under BOTH
#                                  # backends: attach kb2_top --once --json
#                                  # mid-run and validate the snapshot with
#                                  # trace_check --profile (published ranks,
#                                  # full schema, a fit stage observed live),
#                                  # then validate the merged collapsed-stack
#                                  # output with trace_check --folded
#   tools/check_tier1.sh --coreset-smoke
#                                  # build, then gate the coreset comm plane:
#                                  # run the test_coreset suite, a small
#                                  # table2_scaling comm-mode sweep (the bench
#                                  # itself aborts on the bytes/ARI/auto bars
#                                  # at representative scale; the smoke size
#                                  # only checks it runs end to end), and
#                                  # trace_check --bench validating the new
#                                  # coreset series schema
#   tools/check_tier1.sh --postmortem-smoke
#                                  # build, then exercise the crash-forensics
#                                  # chain under BOTH backends: a seeded kill
#                                  # of one rank mid-fit (real SIGKILL under
#                                  # proc, thrown KilledError under thread)
#                                  # must leave a flight dump whose
#                                  # kb2_postmortem report names the dead
#                                  # rank, its last stage, and the in-flight
#                                  # comm op, and whose --json output passes
#                                  # trace_check --postmortem
#   tools/check_tier1.sh --perf-gate
#                                  # build, rerun bench/kernel_fusion,
#                                  # bench/comm_backends,
#                                  # bench/profile_overhead,
#                                  # bench/flight_overhead, and
#                                  # bench/table2_scaling with the committed
#                                  # baselines' exact options, and gate with
#                                  # kb2_analyze --compare against
#                                  # bench/baselines/BENCH_*.json; also
#                                  # self-tests the gate by proving a
#                                  # synthetic 2x slowdown (--scale-time 2)
#                                  # fails
#
# The sanitizer modes build into their own directories (build-tsan/build-asan)
# so they never dirty the primary build, and run only the `comm`-labelled
# suites (thread_comm, fault injection, resilience soak) — the lock-heavy code
# where a sanitizer earns its ~10x slowdown.
#
# Extra arguments after the flags are forwarded to ctest.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${BUILD_DIR:-${repo_root}/build}"

sanitize=""
trace_smoke=0
bench_smoke=0
analyze_smoke=0
proc_smoke=0
chaos_smoke=0
profile_smoke=0
coreset_smoke=0
postmortem_smoke=0
perf_gate=0
ctest_args=()
for arg in "$@"; do
  case "${arg}" in
    --quick) ctest_args+=(-LE slow) ;;
    --tsan) sanitize="thread" ;;
    --asan) sanitize="address" ;;
    --trace-smoke) trace_smoke=1 ;;
    --bench-smoke) bench_smoke=1 ;;
    --analyze-smoke) analyze_smoke=1 ;;
    --proc-smoke) proc_smoke=1 ;;
    --chaos-smoke) chaos_smoke=1 ;;
    --profile-smoke) profile_smoke=1 ;;
    --coreset-smoke) coreset_smoke=1 ;;
    --postmortem-smoke) postmortem_smoke=1 ;;
    --perf-gate) perf_gate=1 ;;
    *) ctest_args+=("${arg}") ;;
  esac
done

cmake_args=()
if [[ "${sanitize}" == "thread" ]]; then
  build_dir="${BUILD_DIR:-${repo_root}/build-tsan}"
  cmake_args+=(-DKB2_SANITIZE=thread)
  ctest_args+=(-L comm)
elif [[ "${sanitize}" == "address" ]]; then
  build_dir="${BUILD_DIR:-${repo_root}/build-asan}"
  cmake_args+=(-DKB2_SANITIZE=address)
  ctest_args+=(-L comm)
fi

cmake -B "${build_dir}" -S "${repo_root}" "${cmake_args[@]}"
cmake --build "${build_dir}" -j

if [[ "${trace_smoke}" == "1" ]]; then
  # Observability smoke: an instrumented distributed run must produce a
  # loadable trace and a non-empty metrics report.
  smoke_dir="$(mktemp -d)"
  trap 'rm -rf "${smoke_dir}"' EXIT
  "${build_dir}/tools/keybin2" generate "${smoke_dir}/points.csv" \
    --points 4000 --dims 8 --k 3 --seed 7
  "${build_dir}/tools/keybin2" cluster "${smoke_dir}/points.csv" \
    --ranks 4 --trace --trace-json "${smoke_dir}/trace.json" \
    --log "${smoke_dir}/events.jsonl" | tee "${smoke_dir}/report.txt"
  "${build_dir}/tools/trace_check" "${smoke_dir}/trace.json" \
    --min-ranks 4 --min-flows 1
  # Empty metrics would drop these lines from the report entirely.
  grep -q "points_binned" "${smoke_dir}/report.txt" \
    || { echo "trace smoke: no metrics counters in report" >&2; exit 1; }
  grep -q "comm heatmap" "${smoke_dir}/report.txt" \
    || { echo "trace smoke: no traffic heatmap in report" >&2; exit 1; }
  echo "trace smoke: OK"
  exit 0
fi

if [[ "${bench_smoke}" == "1" ]]; then
  # Kernel-fusion smoke: a small run of the fused-vs-staged bench. The bench
  # exits nonzero on any fused/staged key, count, or merge mismatch, so this
  # doubles as a bit-identity gate; trace_check then validates the report
  # schema the perf table is built from.
  smoke_dir="$(mktemp -d)"
  trap 'rm -rf "${smoke_dir}"' EXIT
  (cd "${smoke_dir}" && "${build_dir}/bench/kernel_fusion" \
    --points-per-rank 20000 --ranks 4 --runs 1)
  "${build_dir}/tools/trace_check" --bench \
    "${smoke_dir}/BENCH_kernel_fusion.json"
  echo "bench smoke: OK"
  exit 0
fi

if [[ "${analyze_smoke}" == "1" ]]; then
  # Trace-analytics smoke: an 8-rank instrumented run must yield a trace
  # whose invariants hold, a critical path that tiles the wall, and a
  # machine-readable analysis report the perf gate could consume.
  smoke_dir="$(mktemp -d)"
  trap 'rm -rf "${smoke_dir}"' EXIT
  "${build_dir}/tools/keybin2" generate "${smoke_dir}/points.csv" \
    --points 4000 --dims 8 --k 3 --seed 7
  "${build_dir}/tools/keybin2" cluster "${smoke_dir}/points.csv" \
    --ranks 8 --trace-json "${smoke_dir}/trace.json"
  "${build_dir}/tools/trace_check" "${smoke_dir}/trace.json" \
    --min-ranks 8 --min-flows 1
  "${build_dir}/tools/kb2_analyze" "${smoke_dir}/trace.json" \
    | tee "${smoke_dir}/analysis.txt"
  grep -q "100.0% of wall" "${smoke_dir}/analysis.txt" \
    || { echo "analyze smoke: critical path does not cover wall" >&2; exit 1; }
  grep -q "straggler" "${smoke_dir}/analysis.txt" \
    || { echo "analyze smoke: no straggler attribution" >&2; exit 1; }
  "${build_dir}/tools/kb2_analyze" "${smoke_dir}/trace.json" --json \
    > "${smoke_dir}/analysis.json"
  "${build_dir}/tools/trace_check" --analysis "${smoke_dir}/analysis.json"
  echo "analyze smoke: OK"
  exit 0
fi

if [[ "${proc_smoke}" == "1" ]]; then
  # Process-backend smoke: forked ranks over shared memory must carry the
  # full product surface — an instrumented 8-rank fit whose merged trace
  # satisfies the analytics chain, the honest SIGKILL-mid-fit recovery
  # tests, and bit-identical results across transports.
  smoke_dir="$(mktemp -d)"
  trap 'rm -rf "${smoke_dir}"' EXIT
  "${build_dir}/tools/keybin2" generate "${smoke_dir}/points.csv" \
    --points 4000 --dims 8 --k 3 --seed 7
  "${build_dir}/tools/keybin2" cluster "${smoke_dir}/points.csv" \
    --ranks 8 --backend proc --trace \
    --trace-json "${smoke_dir}/trace.json" \
    --out "${smoke_dir}/proc_out.csv" | tee "${smoke_dir}/report.txt"
  grep -q "process backend" "${smoke_dir}/report.txt" \
    || { echo "proc smoke: run did not use the process backend" >&2; exit 1; }
  grep -q "comm heatmap" "${smoke_dir}/report.txt" \
    || { echo "proc smoke: no merged traffic heatmap" >&2; exit 1; }
  "${build_dir}/tools/trace_check" "${smoke_dir}/trace.json" \
    --min-ranks 8 --min-flows 1
  "${build_dir}/tools/kb2_analyze" "${smoke_dir}/trace.json" \
    | grep -q "100.0% of wall" \
    || { echo "proc smoke: critical path does not cover wall" >&2; exit 1; }
  # Same input over threads: the transport may not leak into the math.
  KB2_BACKEND=thread "${build_dir}/tools/keybin2" cluster \
    "${smoke_dir}/points.csv" --ranks 8 --out "${smoke_dir}/thread_out.csv" \
    > /dev/null
  cmp "${smoke_dir}/proc_out.csv" "${smoke_dir}/thread_out.csv" \
    || { echo "proc smoke: thread/proc outputs diverge" >&2; exit 1; }
  # The honest failure stories: a real SIGKILLed child mid-fit, survivor
  # agreement, and checkpoint/restart across a genuine process death.
  "${build_dir}/tests/test_proc_comm" --gtest_filter='ProcComm.HonestSigkill*:ProcComm.Sigkilled*:ProcComm.CheckpointSurvives*'
  echo "proc smoke: OK"
  exit 0
fi

if [[ "${chaos_smoke}" == "1" ]]; then
  # Chaos-soak smoke: seeded fault schedules (SIGKILL mid-protocol, killed
  # respawns, delayed ranks, damaged checkpoints) against real forked ranks.
  # kb2_soak exits nonzero on any hang (watchdog) or silent mismatch, so the
  # gate is its exit code plus the schema of the soak report it emits.
  smoke_dir="$(mktemp -d)"
  trap 'rm -rf "${smoke_dir}"' EXIT
  (cd "${smoke_dir}" && "${build_dir}/tools/kb2_soak" \
    --schedules 8 --ranks 4 --points-per-rank 1500 --seed 42) \
    | tee "${smoke_dir}/soak.txt"
  grep -q "kb2_soak: PASS" "${smoke_dir}/soak.txt" \
    || { echo "chaos smoke: soak did not report PASS" >&2; exit 1; }
  # A soak where no schedule ever recovered would pass vacuously; require
  # at least one respawn-and-regrow to have actually happened.
  grep -q "regrow=[1-9]" "${smoke_dir}/soak.txt" \
    || { echo "chaos smoke: no schedule exercised respawn/regrow" >&2; exit 1; }
  "${build_dir}/tools/trace_check" --soak \
    "${smoke_dir}/BENCH_chaos_soak.json"
  echo "chaos smoke: OK"
  exit 0
fi

if [[ "${profile_smoke}" == "1" ]]; then
  # Telemetry-plane smoke: a profiled fit must be attachable from outside
  # while it runs, under both transport backends. The input is sized so the
  # fit outlives several kb2_top polls; the snapshot must carry a live
  # fit/* stage (stage-accurate, not just non-empty), and the merged folded
  # stacks must be schema-valid with a positive sample total.
  smoke_dir="$(mktemp -d)"
  trap 'rm -rf "${smoke_dir}"' EXIT
  "${build_dir}/tools/keybin2" generate "${smoke_dir}/points.csv" \
    --points 160000 --dims 8 --k 3 --seed 7
  for backend in thread proc; do
    seg="kb2smoke$$${backend}"
    "${build_dir}/tools/keybin2" cluster "${smoke_dir}/points.csv" \
      --ranks 4 --backend "${backend}" --profile \
      --profile-folded "${smoke_dir}/${backend}.folded" \
      --telemetry "${seg}" > "${smoke_dir}/${backend}.txt" 2>&1 &
    fit_pid=$!
    # Poll until a snapshot shows a live fit stage; the segment appears
    # (and the magic publishes) strictly before the ranks launch, so the
    # only race is the fit finishing first — sized away above.
    got_stage=0
    for _ in $(seq 1 100); do
      if "${build_dir}/tools/kb2_top" --segment "${seg}" --once --json \
        > "${smoke_dir}/${backend}.snap.json" 2>/dev/null \
        && grep -q '"stage": "fit' "${smoke_dir}/${backend}.snap.json"; then
        got_stage=1
        break
      fi
      sleep 0.05
    done
    wait "${fit_pid}" \
      || { echo "profile smoke: ${backend} fit failed" >&2; exit 1; }
    [[ "${got_stage}" == "1" ]] \
      || { echo "profile smoke: never observed a live fit stage over \
${backend}" >&2; exit 1; }
    "${build_dir}/tools/trace_check" --profile \
      "${smoke_dir}/${backend}.snap.json" --min-ranks 1
    "${build_dir}/tools/trace_check" --folded \
      "${smoke_dir}/${backend}.folded"
    echo "profile smoke: ${backend} backend OK"
  done
  echo "profile smoke: OK"
  exit 0
fi

if [[ "${coreset_smoke}" == "1" ]]; then
  # Coreset comm-plane smoke: the dedicated suite (samplers, merge algebra,
  # determinism, auto-selection, both transports), then a small end-to-end
  # comm-mode sweep and the schema of the report the perf gate consumes.
  # The acceptance bars (>= 5x bytes vs sparse, ARI >= 0.95, kAuto picks
  # coreset) are enforced by the bench itself at representative scale — the
  # perf-gate invocation below runs exactly that; the smoke size here only
  # proves the plumbing end to end.
  smoke_dir="$(mktemp -d)"
  trap 'rm -rf "${smoke_dir}"' EXIT
  "${build_dir}/tests/test_coreset"
  (cd "${smoke_dir}" && "${build_dir}/bench/table2_scaling" \
    --points-per-rank 500 --runs 1 --seed 42)
  "${build_dir}/tools/trace_check" --bench \
    "${smoke_dir}/BENCH_table2_scaling.json"
  echo "coreset smoke: OK"
  exit 0
fi

if [[ "${postmortem_smoke}" == "1" ]]; then
  # Crash-forensics smoke: a seeded kill of rank 2 at its 25th comm op must
  # leave a readable flight dump on both backends. Under proc the kill is a
  # real SIGKILL and the respawn ladder recovers the job (exit 0); under
  # thread it is a thrown KilledError and the CLI exits nonzero — either
  # way the dump and its post-mortem story are what the gate judges.
  smoke_dir="$(mktemp -d)"
  trap 'rm -rf "${smoke_dir}"' EXIT
  "${build_dir}/tools/keybin2" generate "${smoke_dir}/points.csv" \
    --points 4000 --dims 8 --k 3 --seed 7
  for backend in proc thread; do
    dump="${smoke_dir}/${backend}_flight.dump"
    "${build_dir}/tools/keybin2" cluster "${smoke_dir}/points.csv" \
      --ranks 4 --backend "${backend}" --timeout 15 \
      --kill-rank 2 --kill-at-op 25 --respawns 1 --retries 3 \
      --flight-recorder --flight-dump "${dump}" \
      > "${smoke_dir}/${backend}.txt" 2>&1 || true
    [[ -f "${dump}" ]] \
      || { echo "postmortem smoke: no flight dump from ${backend}" >&2
           cat "${smoke_dir}/${backend}.txt" >&2; exit 1; }
    "${build_dir}/tools/kb2_postmortem" "${dump}" \
      | tee "${smoke_dir}/${backend}_report.txt"
    # The report must name the dead rank, its last pipeline stage, and the
    # comm op it died inside (peer + tag) — the whole point of the recorder.
    grep -q "rank 2 inc 0  DEAD" "${smoke_dir}/${backend}_report.txt" \
      || { echo "postmortem smoke: ${backend} report misses dead rank" >&2
           exit 1; }
    grep -Eq "last stage : fit" "${smoke_dir}/${backend}_report.txt" \
      || { echo "postmortem smoke: ${backend} report misses last stage" >&2
           exit 1; }
    grep -Eq "in flight  : (send|recv|barrier|agree)" \
      "${smoke_dir}/${backend}_report.txt" \
      || { echo "postmortem smoke: ${backend} report misses in-flight op" >&2
           exit 1; }
    "${build_dir}/tools/kb2_postmortem" "${dump}" --json \
      > "${smoke_dir}/${backend}_report.json"
    "${build_dir}/tools/trace_check" --postmortem \
      "${smoke_dir}/${backend}_report.json"
    echo "postmortem smoke: ${backend} backend OK"
  done
  # Under proc the SIGKILL was real and the ladder must still have finished
  # the job — forensics without forfeiting the answer.
  grep -q "keybin2: .* clusters" "${smoke_dir}/proc.txt" \
    || { echo "postmortem smoke: proc run did not recover to a result" >&2
         exit 1; }
  echo "postmortem smoke: OK"
  exit 0
fi

if [[ "${perf_gate}" == "1" ]]; then
  # Continuous perf-regression gate: rerun each bench with its committed
  # baseline's exact options and compare. The second compare proves the
  # gate itself still trips: a synthetic 2x slowdown must FAIL.
  # table2_scaling runs its comm-mode sweep at full gate scale, so its
  # nonzero exit on a missed bytes/ARI/auto-selection bar fails the gate
  # before the baseline comparison does.
  gate_dir="$(mktemp -d)"
  trap 'rm -rf "${gate_dir}"' EXIT
  for bench in kernel_fusion comm_backends profile_overhead flight_overhead \
               table2_scaling; do
    baseline="${repo_root}/bench/baselines/BENCH_${bench}.json"
    [[ -f "${baseline}" ]] \
      || { echo "perf gate: missing baseline ${baseline}" >&2; exit 1; }
    case "${bench}" in
      # table2 runs its stages at small per-rank sizes, so sub-50ms stage
      # walls are scheduler jitter: judge only bytes (still gated for every
      # stage) and the big stage imbalances there.
      table2_scaling)
        bench_opts=(--points-per-rank 2000 --runs 2 --seed 42)
        compare_opts=(--min-stage-seconds 0.05)
        ;;
      *)
        bench_opts=(--points-per-rank 20000 --ranks 4 --runs 3 --seed 42)
        compare_opts=()
        ;;
    esac
    (cd "${gate_dir}" && "${build_dir}/bench/${bench}" "${bench_opts[@]}")
    "${build_dir}/tools/kb2_analyze" --compare "${baseline}" \
      "${gate_dir}/BENCH_${bench}.json" "${compare_opts[@]}"
    if "${build_dir}/tools/kb2_analyze" --compare "${baseline}" \
      "${gate_dir}/BENCH_${bench}.json" "${compare_opts[@]}" \
      --scale-time 2.0 >/dev/null; then
      echo "perf gate: self-test failed (2x slowdown passed ${bench})" >&2
      exit 1
    fi
  done
  echo "perf gate: OK (and self-test trips on synthetic 2x slowdown)"
  exit 0
fi

ctest --test-dir "${build_dir}" --output-on-failure -j"$(nproc)" \
  "${ctest_args[@]}"
