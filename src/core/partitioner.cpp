#include "core/partitioner.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "stats/kde.hpp"
#include "stats/smoothing.hpp"

namespace keybin2::core {

std::uint32_t DimensionPartition::primary_of(std::size_t b) const {
  KB2_CHECK_MSG(b < bins, "bin " << b << " out of " << bins);
  const auto it = std::upper_bound(cuts.begin(), cuts.end(), b);
  return static_cast<std::uint32_t>(it - cuts.begin());
}

std::pair<std::size_t, std::size_t> DimensionPartition::range_of(
    std::size_t p) const {
  KB2_CHECK_MSG(p < primary_count(), "primary " << p << " out of "
                                                << primary_count());
  const std::size_t begin = p == 0 ? 0 : cuts[p - 1];
  const std::size_t end = p == cuts.size() ? bins : cuts[p];
  return {begin, end};
}

DimensionPartition partition_discrete_opt(std::span<const double> counts,
                                          double min_prominence,
                                          PartitionTrace* trace,
                                          Smoothing smoothing) {
  DimensionPartition out;
  out.bins = counts.size();
  if (counts.size() < 3) return out;

  const std::size_t w = stats::smoothing_window(counts.size());
  const auto smoothed =
      smoothing == Smoothing::kMovingAverage
          ? stats::moving_average(counts, w)
          : stats::kde_smooth(counts, stats::silverman_bandwidth(counts));
  const double peak = *std::max_element(smoothed.begin(), smoothed.end());
  if (peak <= 0.0) return out;

  const auto slope = stats::local_linear_slope(smoothed, w);
  const auto curvature = stats::first_difference(slope);

  const double prominence = min_prominence * peak;
  const auto modes = stats::prominent_maxima(smoothed, prominence);

  if (trace) {
    trace->smoothed = smoothed;
    trace->slope = slope;
    trace->curvature = curvature;
    trace->modes = modes;
    trace->inflections = stats::sign_changes(curvature);
  }

  // One cut per pair of consecutive modes, at the lowest smoothed density
  // between them (the inter-cluster separation maximizer). The cut is the
  // first bin of the right-hand primary cluster.
  for (std::size_t m = 0; m + 1 < modes.size(); ++m) {
    std::size_t argmin = modes[m];
    double best = smoothed[modes[m]];
    for (std::size_t b = modes[m] + 1; b <= modes[m + 1]; ++b) {
      if (smoothed[b] < best) {
        best = smoothed[b];
        argmin = b;
      }
    }
    // Empty primaries cannot happen: argmin lies strictly between two
    // distinct modes, but guard against duplicate cuts at plateaus.
    if (argmin > 0 && (out.cuts.empty() || out.cuts.back() < argmin)) {
      out.cuts.push_back(argmin);
    }
  }
  return out;
}

DimensionPartition partition_v1_threshold(std::span<const double> counts,
                                          double density_threshold) {
  DimensionPartition out;
  out.bins = counts.size();
  if (counts.empty()) return out;
  const double peak = *std::max_element(counts.begin(), counts.end());
  if (peak <= 0.0) return out;
  const double thresh = density_threshold * peak;

  // Find maximal dense runs.
  std::vector<std::pair<std::size_t, std::size_t>> runs;  // [begin, end)
  std::size_t i = 0;
  while (i < counts.size()) {
    if (counts[i] >= thresh) {
      std::size_t j = i;
      while (j < counts.size() && counts[j] >= thresh) ++j;
      runs.emplace_back(i, j);
      i = j;
    } else {
      ++i;
    }
  }
  // A cut between consecutive runs at the midpoint of the sparse gap.
  for (std::size_t r = 0; r + 1 < runs.size(); ++r) {
    const std::size_t cut = (runs[r].second + runs[r + 1].first + 1) / 2;
    if (cut > 0 && (out.cuts.empty() || out.cuts.back() < cut)) {
      out.cuts.push_back(cut);
    }
  }
  return out;
}

DimensionPartition partition(std::span<const double> counts,
                             const Params& params, PartitionTrace* trace) {
  if (params.use_discrete_opt) {
    return partition_discrete_opt(counts, params.min_prominence, trace,
                                  params.smoothing);
  }
  return partition_v1_threshold(counts, params.v1_density_threshold);
}

}  // namespace keybin2::core
