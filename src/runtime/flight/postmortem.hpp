// Post-mortem reconstruction over a flight dump (DESIGN.md §10).
//
// The analysis replays each rank's ring tail to recover its last pipeline
// stage and last comm operation, derives per-rank "waiting on whom" edges
// from unmatched operation begins, and classifies the failure:
//   * victim    — at least one rank is dead; ranks blocked on a dead rank
//                 are its collateral.
//   * deadlock  — nobody is dead but the wait edges contain a cycle.
//   * straggler — nobody is dead, no cycle, but some rank everyone waits on
//                 is itself still computing.
//   * clean     — no dead ranks and no waiters.
// Shared by tools/kb2_postmortem and the test suite so the attribution
// algorithm is exercised directly, not just through the CLI.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "runtime/flight/flight.hpp"

namespace keybin2::runtime::flight {

/// One rank's reconstructed story.
struct RankStory {
  int rank = 0;
  std::uint32_t incarnation = 0;
  std::int64_t epoch_ns = 0;
  bool dead = false;
  std::string death_reason;
  std::string last_stage;  // innermost open scope at the tail ("" if none)
  /// Last comm record when it was an unmatched begin: the op the rank was
  /// inside when the story ends.
  std::optional<FlightRecord> in_flight;
  /// Peer this rank was blocked on: a rank id, -1 (not waiting), or -2
  /// (collective — waiting on the whole group).
  int waiting_on = -1;
  std::uint64_t records_total = 0;
  std::uint64_t records_valid = 0;
  std::uint64_t dropped = 0;
};

struct PostmortemReport {
  std::string job;
  std::string reason;
  std::int64_t dump_t_ns = 0;
  std::vector<RankStory> ranks;
  std::vector<std::pair<int, int>> wait_edges;  // waiter -> waited-on
  std::vector<int> dead_ranks;
  std::vector<int> cycle;   // one deadlock cycle, when found
  int straggler = -1;
  std::string verdict;      // "victim" | "deadlock" | "straggler" | "clean"
};

PostmortemReport analyze_dump(const FlightDump& dump);

/// Human-readable report.
std::string render_text(const PostmortemReport& report);

/// Machine-readable report (shares runtime/json's writer; schema checked by
/// trace_check --postmortem).
std::string render_json(const PostmortemReport& report);

/// The ring tails as a Perfetto/Chrome-compatible trace snippet: matched
/// begin/end pairs become complete slices, unmatched begins and point events
/// become instants. Lanes are (pid = rank, tid = incarnation), so a
/// respawned incarnation's records never interleave with its dead
/// predecessor's.
std::string render_trace_json(const FlightDump& dump);

/// Short op label ("send", "recv", "barrier", "agree", ...) for an event
/// type.
const char* event_type_name(EventType t);

}  // namespace keybin2::runtime::flight
