#include "core/binner.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace keybin2::core {
namespace {

TEST(Binner, HistogramTotalsEqualPointCount) {
  Rng rng(1);
  Matrix points(500, 4);
  for (auto& v : points.flat()) v = rng.uniform(0.0, 1.0);
  const std::vector<Range> ranges(4, Range{0.0, 1.0});
  const auto keys = compute_keys(points, ranges, 6);
  const auto hists = build_histograms(keys, ranges);
  ASSERT_EQ(hists.size(), 4u);
  for (const auto& h : hists) {
    EXPECT_DOUBLE_EQ(h.total(), 500.0);
    EXPECT_EQ(h.max_depth(), 6);
  }
}

TEST(Binner, MatchesDirectHistogramConstruction) {
  Rng rng(2);
  Matrix points(300, 2);
  for (auto& v : points.flat()) v = rng.normal(0.0, 2.0);
  const std::vector<Range> ranges(2, Range{-8.0, 8.0});
  const auto keys = compute_keys(points, ranges, 5);
  const auto hists = build_histograms(keys, ranges);

  for (std::size_t j = 0; j < 2; ++j) {
    stats::HierarchicalHistogram direct(-8.0, 8.0, 5);
    for (std::size_t i = 0; i < points.rows(); ++i) direct.add(points(i, j));
    auto a = hists[j].deepest_counts();
    auto b = direct.deepest_counts();
    for (std::size_t k = 0; k < a.size(); ++k) {
      EXPECT_DOUBLE_EQ(a[k], b[k]) << "dim " << j << " bin " << k;
    }
  }
}

TEST(Binner, FlattenUnflattenRoundtrip) {
  Rng rng(3);
  Matrix points(100, 3);
  for (auto& v : points.flat()) v = rng.uniform(0.0, 1.0);
  const std::vector<Range> ranges(3, Range{0.0, 1.0});
  const auto keys = compute_keys(points, ranges, 4);
  const auto hists = build_histograms(keys, ranges);

  const auto flat = flatten_counts(hists);
  EXPECT_EQ(flat.size(), 3u * 16u);

  auto copy = hists;
  for (auto& h : copy) {
    h.set_deepest_counts(std::vector<double>(16, 0.0));
  }
  unflatten_counts(flat, copy);
  for (std::size_t j = 0; j < 3; ++j) {
    auto a = hists[j].deepest_counts();
    auto b = copy[j].deepest_counts();
    for (std::size_t k = 0; k < a.size(); ++k) EXPECT_EQ(a[k], b[k]);
  }
}

TEST(Binner, UnflattenValidatesLength) {
  const std::vector<Range> ranges(2, Range{0.0, 1.0});
  const auto keys = compute_keys(Matrix(1, 2), ranges, 3);
  auto hists = build_histograms(keys, ranges);
  std::vector<double> short_flat(7, 0.0);
  EXPECT_THROW(unflatten_counts(short_flat, hists), Error);
  std::vector<double> long_flat(17, 0.0);
  EXPECT_THROW(unflatten_counts(long_flat, hists), Error);
}

TEST(Binner, MergedHistogramsEqualUnionOfParts) {
  // Histogram reduce is the distributed core: bin(A) + bin(B) == bin(A u B).
  Rng rng(4);
  Matrix part_a(200, 2), part_b(150, 2);
  for (auto& v : part_a.flat()) v = rng.normal(1.0, 1.0);
  for (auto& v : part_b.flat()) v = rng.normal(-1.0, 1.0);
  const std::vector<Range> ranges(2, Range{-6.0, 6.0});

  auto hists_a = build_histograms(compute_keys(part_a, ranges, 6), ranges);
  const auto hists_b = build_histograms(compute_keys(part_b, ranges, 6), ranges);

  Matrix all(350, 2);
  for (std::size_t i = 0; i < 200; ++i) {
    std::copy_n(part_a.row(i).begin(), 2, all.row(i).begin());
  }
  for (std::size_t i = 0; i < 150; ++i) {
    std::copy_n(part_b.row(i).begin(), 2, all.row(200 + i).begin());
  }
  const auto hists_all = build_histograms(compute_keys(all, ranges, 6), ranges);

  for (std::size_t j = 0; j < 2; ++j) {
    hists_a[j].merge(hists_b[j]);
    auto merged = hists_a[j].deepest_counts();
    auto direct = hists_all[j].deepest_counts();
    for (std::size_t k = 0; k < merged.size(); ++k) {
      EXPECT_DOUBLE_EQ(merged[k], direct[k]);
    }
  }
}

TEST(Binner, EmptyPointSetYieldsEmptyHistograms) {
  const std::vector<Range> ranges(2, Range{0.0, 1.0});
  const auto keys = compute_keys(Matrix(0, 2), ranges, 4);
  const auto hists = build_histograms(keys, ranges);
  for (const auto& h : hists) EXPECT_EQ(h.total(), 0.0);
}

}  // namespace
}  // namespace keybin2::core
