// kb2_analyze: post-mortem trace analytics and the perf-regression gate.
//
//   kb2_analyze trace.json [--json]
//       Parse a Chrome trace-event document (written by
//       `keybin2 cluster --trace-json`) back into per-rank timelines and run
//       the distributed critical-path analysis: path decomposition into
//       compute/comm/wait, per-stage imbalance, and straggler attribution.
//       --json emits the machine-readable report (the shape trace_check
//       --analysis validates) instead of the human table.
//
//   kb2_analyze --compare baseline.json current.json [--scale-time F]
//               [--time-tol F] [--bytes-tol F] [--imbalance-tol F]
//               [--noise-k F] [--min-stage-seconds F]
//       Diff two bench reports (BENCH_*.json) or two analysis reports.
//       Exits 0 when no gated metric regressed beyond its noise-calibrated
//       tolerance, 1 otherwise — check_tier1.sh --perf-gate builds on this.
//       --scale-time injects a synthetic slowdown into `current` so the
//       gate can prove it would catch a real one.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "runtime/analysis/analysis.hpp"
#include "runtime/analysis/compare.hpp"
#include "runtime/json.hpp"
#include "runtime/timeline.hpp"

namespace {

std::optional<keybin2::runtime::JsonValue> load_json(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    std::fprintf(stderr, "kb2_analyze: cannot open %s\n", path.c_str());
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  auto doc = keybin2::runtime::json_parse(buf.str());
  if (!doc.has_value()) {
    std::fprintf(stderr, "kb2_analyze: %s is not well-formed JSON\n",
                 path.c_str());
  }
  return doc;
}

int usage(int code) {
  std::printf(
      "usage: kb2_analyze trace.json [--json]\n"
      "       kb2_analyze --compare baseline.json current.json\n"
      "                   [--scale-time F] [--time-tol F] [--bytes-tol F]\n"
      "                   [--imbalance-tol F] [--noise-k F]\n"
      "                   [--min-stage-seconds F]\n");
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  bool compare_mode = false;
  bool json_out = false;
  keybin2::runtime::CompareOptions copts;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "kb2_analyze: missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--compare")) {
      compare_mode = true;
    } else if (!std::strcmp(argv[i], "--json")) {
      json_out = true;
    } else if (!std::strcmp(argv[i], "--scale-time")) {
      copts.scale_time = std::strtod(next("--scale-time"), nullptr);
    } else if (!std::strcmp(argv[i], "--time-tol")) {
      copts.time_tol = std::strtod(next("--time-tol"), nullptr);
    } else if (!std::strcmp(argv[i], "--bytes-tol")) {
      copts.bytes_tol = std::strtod(next("--bytes-tol"), nullptr);
    } else if (!std::strcmp(argv[i], "--imbalance-tol")) {
      copts.imbalance_tol = std::strtod(next("--imbalance-tol"), nullptr);
    } else if (!std::strcmp(argv[i], "--min-stage-seconds")) {
      copts.min_stage_seconds =
          std::strtod(next("--min-stage-seconds"), nullptr);
    } else if (!std::strcmp(argv[i], "--noise-k")) {
      copts.noise_k = std::strtod(next("--noise-k"), nullptr);
    } else if (!std::strcmp(argv[i], "--help")) {
      return usage(0);
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "kb2_analyze: unknown flag %s (try --help)\n",
                   argv[i]);
      return 2;
    } else {
      paths.emplace_back(argv[i]);
    }
  }

  if (compare_mode) {
    if (paths.size() != 2) return usage(2);
    const auto baseline = load_json(paths[0]);
    const auto current = load_json(paths[1]);
    if (!baseline.has_value() || !current.has_value()) return 1;
    const auto result =
        keybin2::runtime::compare_reports(*baseline, *current, copts);
    std::fputs(result.format().c_str(), stdout);
    return result.ok() ? 0 : 1;
  }

  if (paths.size() != 1) return usage(2);
  const auto doc = load_json(paths[0]);
  if (!doc.has_value()) return 1;
  const auto timelines =
      keybin2::runtime::timelines_from_chrome_trace(*doc);
  if (timelines.empty()) {
    std::fprintf(stderr,
                 "kb2_analyze: %s holds no rank timelines (is it a "
                 "--trace-json document?)\n",
                 paths[0].c_str());
    return 1;
  }
  const auto analysis = keybin2::runtime::analyze(timelines);
  if (json_out) {
    keybin2::runtime::JsonWriter w;
    analysis.to_json(w);
    std::fputs(w.str().c_str(), stdout);
    std::fputc('\n', stdout);
  } else {
    std::fputs(analysis.format().c_str(), stdout);
  }
  return 0;
}
