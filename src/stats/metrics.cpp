#include "stats/metrics.hpp"

#include <set>
#include <unordered_map>

#include "common/error.hpp"

namespace keybin2::stats {

namespace {

std::uint64_t choose2(std::uint64_t n) { return n * (n - 1) / 2; }

}  // namespace

std::map<std::pair<int, int>, std::uint64_t> contingency_table(
    std::span<const int> predicted, std::span<const int> truth) {
  KB2_CHECK_MSG(predicted.size() == truth.size(),
                "label vectors differ in length: " << predicted.size() << " vs "
                                                   << truth.size());
  std::map<std::pair<int, int>, std::uint64_t> cells;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    ++cells[{predicted[i], truth[i]}];
  }
  return cells;
}

PairwiseScores pairwise_scores(std::span<const int> predicted,
                               std::span<const int> truth) {
  const auto cells = contingency_table(predicted, truth);

  std::unordered_map<int, std::uint64_t> pred_sizes, truth_sizes;
  PairwiseScores s;
  for (const auto& [key, n] : cells) {
    pred_sizes[key.first] += n;
    truth_sizes[key.second] += n;
    s.true_positive_pairs += choose2(n);
  }
  for (const auto& [label, n] : pred_sizes) {
    (void)label;
    s.predicted_pairs += choose2(n);
  }
  for (const auto& [label, n] : truth_sizes) {
    (void)label;
    s.truth_pairs += choose2(n);
  }

  s.precision = s.predicted_pairs > 0
                    ? static_cast<double>(s.true_positive_pairs) /
                          static_cast<double>(s.predicted_pairs)
                    : 0.0;
  s.recall = s.truth_pairs > 0 ? static_cast<double>(s.true_positive_pairs) /
                                     static_cast<double>(s.truth_pairs)
                               : 0.0;
  s.f1 = (s.precision + s.recall) > 0.0
             ? 2.0 * s.precision * s.recall / (s.precision + s.recall)
             : 0.0;
  return s;
}

double adjusted_rand_index(std::span<const int> predicted,
                           std::span<const int> truth) {
  const auto cells = contingency_table(predicted, truth);
  std::unordered_map<int, std::uint64_t> pred_sizes, truth_sizes;
  double sum_cells = 0.0;
  for (const auto& [key, n] : cells) {
    pred_sizes[key.first] += n;
    truth_sizes[key.second] += n;
    sum_cells += static_cast<double>(choose2(n));
  }
  double sum_pred = 0.0, sum_truth = 0.0;
  for (const auto& [l, n] : pred_sizes) {
    (void)l;
    sum_pred += static_cast<double>(choose2(n));
  }
  for (const auto& [l, n] : truth_sizes) {
    (void)l;
    sum_truth += static_cast<double>(choose2(n));
  }
  const double total =
      static_cast<double>(choose2(static_cast<std::uint64_t>(predicted.size())));
  if (total == 0.0) return 1.0;
  const double expected = sum_pred * sum_truth / total;
  const double max_index = 0.5 * (sum_pred + sum_truth);
  const double denom = max_index - expected;
  if (denom == 0.0) return 1.0;
  return (sum_cells - expected) / denom;
}

double purity(std::span<const int> predicted, std::span<const int> truth) {
  if (predicted.empty()) return 0.0;
  const auto cells = contingency_table(predicted, truth);
  std::unordered_map<int, std::uint64_t> best_in_cluster;
  for (const auto& [key, n] : cells) {
    auto& best = best_in_cluster[key.first];
    if (n > best) best = n;
  }
  std::uint64_t correct = 0;
  for (const auto& [l, n] : best_in_cluster) {
    (void)l;
    correct += n;
  }
  return static_cast<double>(correct) / static_cast<double>(predicted.size());
}

std::size_t distinct_labels(std::span<const int> labels) {
  std::set<int> s(labels.begin(), labels.end());
  return s.size();
}

}  // namespace keybin2::stats
