#include "data/shapes.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace keybin2::data {

Dataset correlated_pair(std::size_t n_per_cluster, double gap,
                        std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t n = 2 * n_per_cluster;
  Dataset out;
  out.points = Matrix(n, 2);
  out.labels.resize(n);
  // Each cluster is N(0, diag(3, 0.3)) rotated 45 degrees, i.e. stretched
  // along y = x; cluster 1 is shifted by `gap` perpendicular to the diagonal.
  const double c45 = std::numbers::sqrt2 / 2.0;
  for (std::size_t i = 0; i < n; ++i) {
    const int label = i < n_per_cluster ? 0 : 1;
    const double along = rng.normal(0.0, 3.0);
    const double across = rng.normal(0.0, 0.3) +
                          (label == 1 ? gap : 0.0);
    auto row = out.points.row(i);
    row[0] = c45 * along - c45 * across;
    row[1] = c45 * along + c45 * across;
    out.labels[i] = label;
  }
  return out;
}

Dataset boxes(std::size_t k, std::size_t n_per_box, double side,
              double spacing, std::uint64_t seed) {
  KB2_CHECK_MSG(spacing > side, "boxes must not touch: spacing " << spacing
                                                                 << " <= side "
                                                                 << side);
  Rng rng(seed);
  const auto grid = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(k))));
  Dataset out;
  out.points = Matrix(k * n_per_box, 2);
  out.labels.resize(k * n_per_box);
  std::size_t idx = 0;
  for (std::size_t c = 0; c < k; ++c) {
    const double cx = static_cast<double>(c % grid) * spacing;
    const double cy = static_cast<double>(c / grid) * spacing;
    for (std::size_t i = 0; i < n_per_box; ++i, ++idx) {
      auto row = out.points.row(idx);
      row[0] = cx + rng.uniform(-side / 2.0, side / 2.0);
      row[1] = cy + rng.uniform(-side / 2.0, side / 2.0);
      out.labels[idx] = static_cast<int>(c);
    }
  }
  return out;
}

Dataset rings(std::size_t k, std::size_t n_per_ring, double gap, double noise,
              std::uint64_t seed) {
  Rng rng(seed);
  Dataset out;
  out.points = Matrix(k * n_per_ring, 2);
  out.labels.resize(k * n_per_ring);
  std::size_t idx = 0;
  for (std::size_t c = 0; c < k; ++c) {
    const double radius = gap * static_cast<double>(c + 1);
    for (std::size_t i = 0; i < n_per_ring; ++i, ++idx) {
      const double theta = rng.uniform(0.0, 2.0 * std::numbers::pi);
      const double r = radius + rng.normal(0.0, noise);
      auto row = out.points.row(idx);
      row[0] = r * std::cos(theta);
      row[1] = r * std::sin(theta);
      out.labels[idx] = static_cast<int>(c);
    }
  }
  return out;
}

Dataset moons(std::size_t n_per_moon, double noise, std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t n = 2 * n_per_moon;
  Dataset out;
  out.points = Matrix(n, 2);
  out.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int label = i < n_per_moon ? 0 : 1;
    const double t = rng.uniform(0.0, std::numbers::pi);
    auto row = out.points.row(i);
    if (label == 0) {
      row[0] = std::cos(t) + rng.normal(0.0, noise);
      row[1] = std::sin(t) + rng.normal(0.0, noise);
    } else {
      row[0] = 1.0 - std::cos(t) + rng.normal(0.0, noise);
      row[1] = 0.5 - std::sin(t) + rng.normal(0.0, noise);
    }
    out.labels[i] = label;
  }
  return out;
}

}  // namespace keybin2::data
