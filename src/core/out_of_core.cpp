#include "core/out_of_core.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "common/error.hpp"
#include "common/serialize.hpp"
#include "core/checkpoint.hpp"
#include "core/pipeline.hpp"
#include "core/streaming.hpp"

namespace keybin2::core {

namespace {

constexpr std::uint64_t kMagic = 0x4b42324453ULL;  // data/io.cpp's "KB2DS"

// Dataset header: magic + rows + cols + has_labels byte. Chunk i of a run
// with C-point chunks starts at a deterministic offset, which is what makes
// resume-by-seek possible.
constexpr std::size_t kDatasetHeaderBytes = 8 + 8 + 8 + 1;

struct BinaryHeader {
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  bool has_labels = false;
};

BinaryHeader read_header(std::ifstream& in, const std::string& path) {
  std::uint64_t magic = 0;
  BinaryHeader h;
  std::uint8_t has_labels = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  KB2_CHECK_MSG(in.good() && magic == kMagic,
                path << " is not a KB2 dataset file");
  in.read(reinterpret_cast<char*>(&h.rows), sizeof(h.rows));
  in.read(reinterpret_cast<char*>(&h.cols), sizeof(h.cols));
  in.read(reinterpret_cast<char*>(&has_labels), sizeof(has_labels));
  KB2_CHECK_MSG(in.good(), "truncated dataset header in " << path);
  h.has_labels = has_labels != 0;
  return h;
}

/// Invoke fn(points_chunk) over the file's rows, `chunk_points` at a time.
template <typename Fn>
std::size_t for_each_chunk(const std::string& path, std::size_t chunk_points,
                           Fn&& fn) {
  std::ifstream in(path, std::ios::binary);
  KB2_CHECK_MSG(in.good(), "cannot open " << path);
  const auto header = read_header(in, path);
  KB2_CHECK_MSG(header.cols >= 1, "dataset has no columns");

  std::size_t chunks = 0;
  std::uint64_t remaining = header.rows;
  while (remaining > 0) {
    const auto take = static_cast<std::size_t>(
        std::min<std::uint64_t>(remaining, chunk_points));
    std::vector<double> flat(take * header.cols);
    in.read(reinterpret_cast<char*>(flat.data()),
            static_cast<std::streamsize>(flat.size() * sizeof(double)));
    KB2_CHECK_MSG(in.good(), "truncated dataset body in " << path);
    fn(Matrix(take, header.cols, std::move(flat)));
    remaining -= take;
    ++chunks;
  }
  return chunks;
}

/// Serialize the pass-1 resume record: chunk cursor + run geometry (for
/// validation on resume) + the full streaming-engine state.
void write_resume_record(const std::string& path, std::uint64_t chunks_done,
                         std::size_t chunk_points, std::uint64_t rows,
                         std::uint64_t cols, const StreamingKeyBin2& engine) {
  ByteWriter w;
  w.write<std::uint64_t>(chunks_done);
  w.write<std::uint64_t>(static_cast<std::uint64_t>(chunk_points));
  w.write<std::uint64_t>(rows);
  w.write<std::uint64_t>(cols);
  engine.serialize(w);
  write_checkpoint_file(path, w.bytes());
}

}  // namespace

OutOfCoreResult fit_from_file(runtime::Context& ctx,
                              const std::string& input_path,
                              const std::string& labels_path,
                              const Params& params,
                              std::size_t chunk_points,
                              const CheckpointOptions& checkpoint) {
  KB2_CHECK_MSG(chunk_points >= 1, "chunk size must be positive");
  const bool checkpointing = !checkpoint.path.empty();
  KB2_CHECK_MSG(!checkpointing || ctx.size() == 1,
                "out-of-core checkpointing is single-rank only: a collective "
                "pass cannot restart from one rank's private file offset");
  KB2_CHECK_MSG(!checkpointing || checkpoint.every_chunks >= 1,
                "checkpoint cadence must be positive");
  auto ooc_scope = ctx.tracer().scope(stage::kOutOfCore);

  // Peek the header for the schema.
  BinaryHeader header;
  {
    std::ifstream in(input_path, std::ios::binary);
    KB2_CHECK_MSG(in.good(), "cannot open " << input_path);
    header = read_header(in, input_path);
  }
  KB2_CHECK_MSG(header.rows > 0, input_path << " holds no points");

  const std::uint64_t total_chunks =
      (header.rows + chunk_points - 1) / chunk_points;

  StreamingKeyBin2 engine(header.cols, params);
  std::uint64_t chunks_done = 0;

  // Resume: a checkpoint from an interrupted run restores the engine and the
  // chunk cursor, after validating it belongs to THIS dataset and geometry.
  if (checkpointing) {
    if (std::ifstream probe(checkpoint.path, std::ios::binary);
        probe.is_open()) {
      const auto payload = read_checkpoint_file_or_previous(checkpoint.path);
      ByteReader r(payload);
      chunks_done = r.read<std::uint64_t>();
      const auto saved_chunk_points = r.read<std::uint64_t>();
      const auto saved_rows = r.read<std::uint64_t>();
      const auto saved_cols = r.read<std::uint64_t>();
      KB2_CHECK_MSG(saved_chunk_points == chunk_points,
                    "checkpoint " << checkpoint.path
                                  << " was taken with chunk_points="
                                  << saved_chunk_points << ", this run uses "
                                  << chunk_points);
      KB2_CHECK_MSG(saved_rows == header.rows && saved_cols == header.cols,
                    "checkpoint " << checkpoint.path << " belongs to a "
                                  << saved_rows << "x" << saved_cols
                                  << " dataset, " << input_path << " is "
                                  << header.rows << "x" << header.cols);
      KB2_CHECK_MSG(chunks_done <= total_chunks,
                    "checkpoint " << checkpoint.path << " cursor "
                                  << chunks_done << " exceeds " << total_chunks
                                  << " chunks");
      engine.restore(r);
      KB2_CHECK_MSG(r.exhausted(), "checkpoint " << checkpoint.path
                                                 << " has trailing bytes");
      ctx.tracer().counter("checkpoint_restores", 1.0);
      ctx.metrics().add("checkpoint_restores");
      ctx.log().info("checkpoint_restore",
                     {{"path", checkpoint.path},
                      {"chunks_done", std::to_string(chunks_done)}});
      if (ctx.flight() != nullptr) {
        ctx.flight()->event(runtime::flight::EventType::kCheckpoint,
                            "restore", chunks_done);
      }
    }
  }

  // One bookkeeping point for every resume record written below, so the
  // tracer counter, the metrics counter, and the event log stay in step.
  const auto record_checkpoint_write = [&](std::uint64_t cursor,
                                           const char* why) {
    ctx.tracer().counter("checkpoint_writes", 1.0);
    ctx.metrics().add("checkpoint_writes");
    ctx.log().info("checkpoint_write",
                   {{"path", checkpoint.path},
                    {"chunks_done", std::to_string(cursor)},
                    {"reason", why}});
    if (ctx.flight() != nullptr) {
      ctx.flight()->event(runtime::flight::EventType::kCheckpoint, why,
                          cursor);
    }
  };

  // Pass 1: histograms (and reservoir) only. With a resume cursor, seek the
  // input straight to the saved chunk boundary — chunk layout is
  // deterministic, so the restart point is a plain file offset.
  OutOfCoreResult result;
  result.dims = header.cols;
  result.chunks = static_cast<std::size_t>(total_chunks);
  {
    auto pass1_scope = ctx.tracer().scope(stage::kPass1Histograms);
    std::ifstream in(input_path, std::ios::binary);
    KB2_CHECK_MSG(in.good(), "cannot open " << input_path);
    in.seekg(static_cast<std::streamoff>(
        kDatasetHeaderBytes +
        chunks_done * chunk_points * header.cols * sizeof(double)));
    KB2_CHECK_MSG(in.good(),
                  "cannot seek to resume offset in " << input_path);

    std::size_t ingested_this_run = 0;
    while (chunks_done < total_chunks) {
      if (checkpointing && checkpoint.max_chunks > 0 &&
          ingested_this_run >= checkpoint.max_chunks) {
        // Budget pause: persist the cursor and hand control back. The next
        // call with the same arguments resumes exactly here, which is how
        // the kill-and-resume tests model a mid-run death deterministically.
        write_resume_record(checkpoint.path, chunks_done, chunk_points,
                            header.rows, header.cols, engine);
        record_checkpoint_write(chunks_done, "budget_pause");
        result.points = engine.points_seen();
        result.completed = false;
        return result;
      }
      const std::uint64_t begin_row = chunks_done * chunk_points;
      const auto take = static_cast<std::size_t>(
          std::min<std::uint64_t>(header.rows - begin_row, chunk_points));
      std::vector<double> flat(take * header.cols);
      in.read(reinterpret_cast<char*>(flat.data()),
              static_cast<std::streamsize>(flat.size() * sizeof(double)));
      KB2_CHECK_MSG(in.good(), "truncated dataset body in " << input_path);
      engine.push_batch(Matrix(take, header.cols, std::move(flat)));
      ++chunks_done;
      ++ingested_this_run;
      if (checkpointing && chunks_done < total_chunks &&
          chunks_done % checkpoint.every_chunks == 0) {
        write_resume_record(checkpoint.path, chunks_done, chunk_points,
                            header.rows, header.cols, engine);
        record_checkpoint_write(chunks_done, "cadence");
      }
    }
  }
  result.points = engine.points_seen();
  result.model = engine.refit(ctx);

  // Pass 2: label every point against the final model, streaming again.
  auto pass2_scope = ctx.tracer().scope(stage::kPass2Label);
  std::ofstream out(labels_path, std::ios::binary);
  KB2_CHECK_MSG(out.good(), "cannot open " << labels_path << " for writing");
  for_each_chunk(input_path, chunk_points, [&](const Matrix& chunk) {
    const auto labels = result.model.predict(chunk);
    out.write(reinterpret_cast<const char*>(labels.data()),
              static_cast<std::streamsize>(labels.size() * sizeof(int)));
  });
  KB2_CHECK_MSG(out.good(), "write to " << labels_path << " failed");
  // The run finished; a stale checkpoint (or its demoted .prev generation)
  // would otherwise resurrect it.
  if (checkpointing) {
    std::remove(checkpoint.path.c_str());
    std::remove((checkpoint.path + ".prev").c_str());
  }
  return result;
}

OutOfCoreResult fit_from_file(const std::string& input_path,
                              const std::string& labels_path,
                              const Params& params,
                              std::size_t chunk_points,
                              const CheckpointOptions& checkpoint) {
  runtime::Context ctx(params.seed);
  return fit_from_file(ctx, input_path, labels_path, params, chunk_points,
                       checkpoint);
}

std::vector<int> read_labels(const std::string& labels_path) {
  std::ifstream in(labels_path, std::ios::binary | std::ios::ate);
  KB2_CHECK_MSG(in.good(), "cannot open " << labels_path);
  const auto bytes = static_cast<std::size_t>(in.tellg());
  KB2_CHECK_MSG(bytes % sizeof(int) == 0,
                labels_path << " is not a label stream");
  std::vector<int> labels(bytes / sizeof(int));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(labels.data()),
          static_cast<std::streamsize>(bytes));
  KB2_CHECK_MSG(in.good(), "truncated label stream " << labels_path);
  return labels;
}

}  // namespace keybin2::core
