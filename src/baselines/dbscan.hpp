// DBSCAN baselines (paper §4 comparator #3).
//
// * dbscan()      — single-site density clustering (a single-rank run of the
//                   parallel formulation below). Neighbour search is exact
//                   brute force, parallelized over the thread pool — the
//                   evaluation's data is high-dimensional (up to 1280-d),
//                   where spatial indexes degenerate to linear scans anyway.
// * pdsdbscan()   — the disjoint-set parallel formulation of Patwary et al.
//                   (PDSDBSCAN, SC'12): ranks compute union edges for their
//                   slice of the points independently, the edge lists are
//                   merged into one union-find, and labels are broadcast.
//                   Our merge is centralized rather than tree-based — on a
//                   histogram-scale workload the difference is immaterial,
//                   and the parallel phase (the O(n^2 d) neighbour search)
//                   is where all the time goes.
//
// Labels: clusters are 0..k-1; noise is -1 (pairwise metrics treat each
// noise point as its own singleton cluster, matching the paper's scoring of
// pdsdbscan's degenerate single-cluster output).
#pragma once

#include <vector>

#include "comm/communicator.hpp"
#include "common/matrix.hpp"

namespace keybin2::baselines {

struct DbscanParams {
  double eps = 0.5;
  std::size_t min_points = 5;  // including the point itself
};

struct DbscanResult {
  std::vector<int> labels;  // -1 = noise
  std::size_t clusters = 0;
  std::size_t core_points = 0;
  std::size_t noise_points = 0;
};

DbscanResult dbscan(const Matrix& points, const DbscanParams& params);

/// SPMD parallel DBSCAN over `comm`; every rank holds a shard and receives
/// labels for its own points (globally consistent cluster ids).
DbscanResult pdsdbscan(comm::Communicator& comm, const Matrix& local_points,
                       const DbscanParams& params);

/// Median distance to the `k`-th nearest neighbour over a sample — the usual
/// way to pick eps ("provide the optimal eps", §4).
double estimate_eps(const Matrix& points, std::size_t k,
                    std::size_t sample = 512, std::uint64_t seed = 42);

}  // namespace keybin2::baselines
