file(REMOVE_RECURSE
  "../bench/shapes_comparison"
  "../bench/shapes_comparison.pdb"
  "CMakeFiles/shapes_comparison.dir/shapes_comparison.cpp.o"
  "CMakeFiles/shapes_comparison.dir/shapes_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shapes_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
