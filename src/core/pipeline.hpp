// The staged KeyBin2 pipeline (paper §3), shared by every clustering driver.
//
// The paper's scalability rests on this stage sequence:
//
//   project -> agree-ranges -> key/bin -> merge-histograms -> partition
//           -> assess
//
// Batch fit(), the streaming engine's refit(), the out-of-core driver, and
// the md::insitu analyzer all used to carry their own copy of this sequence;
// they now compose the stage functions below, each of which opens a tracer
// scope on the supplied runtime::Context (paths like "fit/trial0/bin") so
// wall time and communication volume are attributable per stage.
//
// Collective discipline: stages marked [collective] must be entered by every
// rank of the context's communicator in the same order (SPMD), exactly like
// the MPI calls they wrap.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "core/binner.hpp"
#include "core/cells.hpp"
#include "core/keys.hpp"
#include "core/model.hpp"
#include "core/params.hpp"
#include "core/partitioner.hpp"
#include "runtime/context.hpp"
#include "stats/histogram.hpp"

namespace keybin2::core {

/// Canonical tracer scope names for the pipeline stages. Every driver opens
/// its scopes through these constants, so trace consumers — the kb2_analyze
/// stage table, the HealthMonitor's EWMA baselines, the perf-regression
/// gate's per-stage metrics — match on one stable spelling instead of
/// string literals scattered across drivers.
namespace stage {
inline constexpr const char* kFit = "fit";
inline constexpr const char* kProject = "project";
inline constexpr const char* kAgreeRanges = "agree_ranges";
inline constexpr const char* kBin = "bin";
inline constexpr const char* kMergeHistograms = "merge_histograms";
inline constexpr const char* kCollapse = "collapse";
inline constexpr const char* kPartition = "partition";
inline constexpr const char* kAssess = "assess";
inline constexpr const char* kShareModel = "share_model";
inline constexpr const char* kLabel = "label";
inline constexpr const char* kRefit = "refit";
inline constexpr const char* kRebin = "rebin";
inline constexpr const char* kReservoirKeys = "reservoir_keys";
inline constexpr const char* kOutOfCore = "out_of_core";
inline constexpr const char* kPass1Histograms = "pass1_histograms";
inline constexpr const char* kPass2Label = "pass2_label";

/// Per-trial scope name "trial<i>"; fold_scope_path collapses every
/// instance onto the "trial*" baseline key.
inline std::string trial(int index) {
  return "trial" + std::to_string(index);
}
}  // namespace stage

/// Stage 1 output: one bootstrap trial's projection.
struct ProjectedTrial {
  Matrix projection;  // empty => identity (no projection)
  Matrix projected;   // this rank's shard in the projected space
};

/// Stage 1 [local]: build the trial's `input_dims` x `n_rp` random
/// projection from `trial_seed` (deterministic — every rank derives the
/// identical matrix with no communication) and project the local shard.
/// With `use_projection` false the shard passes through unchanged under an
/// identity projection.
ProjectedTrial stage_project(runtime::Context& ctx, const Matrix& local_points,
                             std::size_t input_dims, int n_rp,
                             bool use_projection, std::uint64_t trial_seed);

/// Stage 1 variant [local]: project through a prebuilt matrix (empty =>
/// identity passthrough). fit_once precomputes every trial's projection in
/// parallel up front; both the staged and the fused path then consume them
/// here without touching the Rng again.
ProjectedTrial stage_project(runtime::Context& ctx, const Matrix& local_points,
                             Matrix projection);

/// Stage 2 [collective]: agree on per-dimension key ranges [r_min, r_max]
/// from the local extremes of `projected` via min/max allreduces. Dimensions
/// for which no rank observed any value (every shard empty) come back as the
/// degenerate-but-valid range [0, 1) instead of the +inf/-inf extremes the
/// empty shards contributed.
std::vector<Range> stage_agree_ranges(runtime::Context& ctx,
                                      const Matrix& projected,
                                      std::size_t dims);

/// Stage 2 variant [collective]: agree from precomputed per-dimension
/// envelopes (the streaming engine tracks lo/hi incrementally instead of
/// rescanning points). Same allreduces, same degenerate-range clamping.
std::vector<Range> stage_agree_ranges(runtime::Context& ctx,
                                      std::span<const double> local_lo,
                                      std::span<const double> local_hi);

/// Stage 3 output: the local key table and per-dimension histograms.
struct BinnedTrial {
  KeyTable keys;
  std::vector<stats::HierarchicalHistogram> hists;
};

/// Stage 3 [local]: assign hierarchical keys to every (point, dimension) and
/// build the per-dimension local histograms — the only point-derived state
/// that will ever leave this rank.
BinnedTrial stage_bin(runtime::Context& ctx, const Matrix& projected,
                      const std::vector<Range>& ranges, int max_depth);

/// Stage 4 [collective]: merge per-dimension histograms across ranks
/// (elementwise sum of deepest-level counts), through the binomial tree or
/// around the ring (§3 step 3). On return every rank holds the global
/// histograms.
///
/// `integral_counts` declares that every count is an integer-valued double
/// (weight-1.0 binning, as in batch fit). Integer sums below 2^53 are exact
/// under any association, which frees the tree topology to pick the
/// bandwidth-optimal recursive-halving allreduce with sparse segment
/// encoding for large payloads (comm::AllreduceAlgo::kAuto). Leave it false
/// for fractional counts (the streaming engine's rebinned reservoirs), where
/// re-associating the sum would perturb results by rounding; those always
/// take the fixed binomial tree. Records reduce_bytes / reduce_algo_* /
/// sparse_hits metrics either way.
void stage_merge_histograms(runtime::Context& ctx,
                            std::vector<stats::HierarchicalHistogram>& hists,
                            Topology topology, bool integral_counts = false);

/// kAuto comm-mode density rule: switch the merge to the coreset plane once
/// the previous merge's global non-zero count reaches this multiple of
/// `coreset_max_cells` — the regime where sparse encoding has re-densified
/// and per-rank traffic grows with occupancy instead of staying capped.
inline constexpr std::uint64_t kCoresetAutoDensityFactor = 4;

/// Stage 4 variant [collective]: full comm-mode dispatch (DESIGN.md §9).
/// `params.comm_mode` selects the plane: kDense pins the binomial tree,
/// kSparse is the classic adaptive dense/sparse allreduce (what the
/// Topology overload above runs), kCoreset ships capped weighted sketches
/// (approximate, sum-only, deterministic per seed), and kAuto upgrades
/// sparse to coreset using the density observed on the *previous* merge.
///
/// `observed_nnz` (optional) carries that density across calls: on entry it
/// is the last merge's global non-zero count (0 = unknown, stay exact); on
/// return it holds this merge's. Every rank computes it from the identical
/// merged vector, so the kAuto protocol choice needs no extra
/// communication and can never diverge across ranks.
void stage_merge_histograms(runtime::Context& ctx,
                            std::vector<stats::HierarchicalHistogram>& hists,
                            const Params& params, bool integral_counts,
                            std::uint64_t* observed_nnz = nullptr);

/// KS-based dimension collapsing on a mid-level histogram (§3.1): returns
/// the indices of dimensions showing multimodal structure. [local; input
/// histograms are already global, so all ranks agree.]
std::vector<int> collapse_dimensions(
    runtime::Context& ctx,
    const std::vector<stats::HierarchicalHistogram>& hists,
    const Params& params);

/// Depth candidates for the partition sweep: classic mode yields one
/// uniform-depth vector per depth in [min_depth, max_depth]; the
/// per-dimension extension yields the single combined candidate where every
/// kept dimension picked its own depth by 1-D histogram-space CH.
std::vector<std::vector<int>> depth_candidates(
    const std::vector<stats::HierarchicalHistogram>& hists,
    const std::vector<int>& kept_dims, const Params& params);

/// Stage 5 output: one depth candidate's partitions.
struct PartitionedCandidate {
  std::vector<int> depths;  // one per kept dimension
  std::vector<stats::Histogram> dim_hists;
  std::vector<DimensionPartition> partitions;
};

/// Stage 5 [local]: cut each kept dimension's global histogram at the given
/// depth with the discrete-optimization partitioner. Deterministic from the
/// merged histograms, so every rank computes identical partitions.
PartitionedCandidate stage_partition(
    runtime::Context& ctx,
    const std::vector<stats::HierarchicalHistogram>& hists,
    const std::vector<int>& kept_dims, std::vector<int> depths,
    const Params& params);

/// Stage 6 output: the candidate's occupied cells and histogram-space CH
/// score, valid at the root rank only (`scored` false elsewhere).
struct AssessedCandidate {
  bool scored = false;
  double score = 0.0;
  std::vector<Cell> cells;
};

/// Stage 6 [collective]: count this rank's occupied cells, gather and merge
/// at root, and rate the candidate with the histogram-space
/// Calinski–Harabasz index. `weight_per_point` scales local counts (the
/// streaming engine weighs its reservoir up to the stream's total mass).
AssessedCandidate stage_assess(runtime::Context& ctx, const KeyTable& keys,
                               const std::vector<int>& kept_dims,
                               const PartitionedCandidate& candidate,
                               double weight_per_point = 1.0);

/// Stage 6 variant [collective]: comm-mode aware. Under `CommMode::kCoreset`
/// a rank whose occupied-cell map exceeds `coreset_max_cells` gathers a
/// weighted coreset of it (cells.hpp coreset_cells) instead of the full
/// map, capping the assess-stage traffic the same way the histogram merge
/// is capped. Every other mode gathers exact cells.
AssessedCandidate stage_assess(runtime::Context& ctx, const KeyTable& keys,
                               const std::vector<int>& kept_dims,
                               const PartitionedCandidate& candidate,
                               const Params& params,
                               double weight_per_point = 1.0);

/// Final stage [collective]: root serializes the winning model (plus any
/// driver extras via `write_extra`), broadcasts it, and every rank returns
/// the deserialized copy. `read_extra` runs on every rank after the model
/// bytes.
Model stage_share_model(
    runtime::Context& ctx, std::optional<Model> root_model,
    const std::function<void(ByteWriter&)>& write_extra = {},
    const std::function<void(ByteReader&)>& read_extra = {});

}  // namespace keybin2::core
