file(REMOVE_RECURSE
  "CMakeFiles/streaming_anomaly.dir/streaming_anomaly.cpp.o"
  "CMakeFiles/streaming_anomaly.dir/streaming_anomaly.cpp.o.d"
  "streaming_anomaly"
  "streaming_anomaly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_anomaly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
