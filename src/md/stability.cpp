#include "md/stability.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "md/builder.hpp"
#include "md/kabsch.hpp"

namespace keybin2::md {

std::vector<std::size_t> sample_representatives(const Trajectory& traj,
                                                std::size_t n, double alpha,
                                                std::uint64_t seed) {
  KB2_CHECK_MSG(n >= 2 && n <= traj.frames(),
                "need 2 <= n <= frames, got n=" << n);
  const auto mean = mean_conformation(traj);

  // Rank all frames by distance to the mean conformation, farthest first.
  std::vector<std::pair<double, std::size_t>> ranked(traj.frames());
  for (std::size_t f = 0; f < traj.frames(); ++f) {
    ranked[f] = {frame_rmsd(traj, f, mean), f};
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  // Power-law draw over ranks, without replacement.
  Rng rng(seed);
  std::vector<double> weight(ranked.size());
  for (std::size_t r = 0; r < ranked.size(); ++r) {
    weight[r] = std::pow(static_cast<double>(r + 1), -alpha);
  }
  std::vector<std::size_t> chosen;
  chosen.reserve(n);
  std::vector<bool> used(ranked.size(), false);
  while (chosen.size() < n) {
    double total = 0.0;
    for (std::size_t r = 0; r < weight.size(); ++r) {
      if (!used[r]) total += weight[r];
    }
    double u = rng.uniform() * total;
    std::size_t pick = ranked.size() - 1;
    for (std::size_t r = 0; r < weight.size(); ++r) {
      if (used[r]) continue;
      u -= weight[r];
      if (u <= 0.0) {
        pick = r;
        break;
      }
    }
    used[pick] = true;
    chosen.push_back(ranked[pick].second);
  }
  return chosen;
}

double hdr_center(std::vector<double> samples, double mass) {
  KB2_CHECK_MSG(!samples.empty(), "hdr_center of no samples");
  KB2_CHECK_MSG(mass > 0.0 && mass <= 1.0, "HDR mass must be in (0, 1]");
  std::sort(samples.begin(), samples.end());
  const auto n = samples.size();
  const auto span = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(mass * static_cast<double>(n))));
  if (span >= n) return (samples.front() + samples.back()) / 2.0;
  // Narrowest window containing `span` consecutive sorted samples.
  std::size_t best = 0;
  double best_width = samples[span - 1] - samples[0];
  for (std::size_t i = 1; i + span <= n; ++i) {
    const double width = samples[i + span - 1] - samples[i];
    if (width < best_width) {
      best_width = width;
      best = i;
    }
  }
  return (samples[best] + samples[best + span - 1]) / 2.0;
}

StabilityAnalysis analyze_stability(const Trajectory& traj,
                                    const StabilityParams& params) {
  const std::size_t frames = traj.frames();
  const std::size_t n = params.n_representatives;
  KB2_CHECK_MSG(params.window >= 2, "window must be >= 2 frames");

  StabilityAnalysis out;
  out.representatives = sample_representatives(traj, n, params.power_law_alpha,
                                               params.seed);

  // Eq. 3: per-frame stability probabilities over the representatives,
  // under the configured conformation distance.
  const bool cartesian =
      params.distance == ConformationDistance::kCartesian;
  std::vector<std::vector<BackboneResidue>> rep_chains;
  if (cartesian) {
    rep_chains.reserve(n);
    for (std::size_t l = 0; l < n; ++l) {
      rep_chains.push_back(build_backbone(traj, out.representatives[l]));
    }
  }
  std::vector<std::vector<double>> prob(frames, std::vector<double>(n, 0.0));
  constexpr double kMinDistance = 1e-6;  // a frame identical to a label
  for (std::size_t i = 0; i < frames; ++i) {
    double denom = 0.0;
    // Cartesian mode rebuilds the frame's backbone once, not once per rep.
    std::vector<BackboneResidue> frame_chain;
    if (cartesian) frame_chain = build_backbone(traj, i);
    for (std::size_t l = 0; l < n; ++l) {
      const double raw = cartesian
                             ? backbone_rmsd(frame_chain, rep_chains[l])
                             : frame_rmsd(traj, i, out.representatives[l]);
      const double d = std::max(kMinDistance, raw);
      prob[i][l] = 1.0 / d;
      denom += prob[i][l];
    }
    for (std::size_t l = 0; l < n; ++l) prob[i][l] /= denom;
  }

  // Rolling 70% HDR centre over the previous `window` frames.
  out.scores.assign(frames, std::vector<double>(n, 0.0));
  std::vector<double> window_buf;
  for (std::size_t i = 0; i < frames; ++i) {
    const std::size_t begin = i >= params.window ? i - params.window + 1 : 0;
    for (std::size_t l = 0; l < n; ++l) {
      window_buf.clear();
      for (std::size_t j = begin; j <= i; ++j) window_buf.push_back(prob[j][l]);
      out.scores[i][l] = hdr_center(window_buf, params.hdr_mass);
    }
  }

  // Eq. 4: compare the two highest scores.
  out.stable_label.assign(frames, -1);
  for (std::size_t i = 0; i < frames; ++i) {
    std::size_t p = 0, q = 1;
    if (out.scores[i][q] > out.scores[i][p]) std::swap(p, q);
    for (std::size_t l = 2; l < n; ++l) {
      if (out.scores[i][l] > out.scores[i][p]) {
        q = p;
        p = l;
      } else if (out.scores[i][l] > out.scores[i][q]) {
        q = l;
      }
    }
    if (out.scores[i][p] - out.scores[i][q] >= params.threshold_w) {
      out.stable_label[i] = static_cast<int>(p);
    }
  }

  // Maximal stable runs.
  std::size_t run_start = 0;
  for (std::size_t i = 1; i <= frames; ++i) {
    const bool boundary = i == frames ||
                          out.stable_label[i] != out.stable_label[run_start];
    if (boundary) {
      if (out.stable_label[run_start] >= 0) {
        out.segments.push_back(
            StableSegment{run_start, i, out.stable_label[run_start]});
      }
      run_start = i;
    }
  }
  return out;
}

}  // namespace keybin2::md
