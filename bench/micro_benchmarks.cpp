// Micro benchmarks (google-benchmark) for KeyBin2's kernels — the pieces
// whose complexity §3.4 analyses:
//   * key assignment         O(M * N_rp * log B)
//   * histogram construction O(M * N_rp)
//   * random projection      O(M * N * N_rp)
//   * smoothing/partitioning O(N_rp * B * w)
//   * histogram-space CH     O(B) — independent of M
//   * collectives            O(message size), the only communication
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "comm/launch.hpp"
#include "common/rng.hpp"
#include "core/assess.hpp"
#include "core/binner.hpp"
#include "core/cells.hpp"
#include "core/keybin2.hpp"
#include "core/partitioner.hpp"
#include "core/projection.hpp"
#include "data/gaussian_mixture.hpp"

namespace {

using namespace keybin2;

Matrix random_points(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (auto& v : m.flat()) v = rng.normal();
  return m;
}

void BM_KeyAssignment(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto points = random_points(m, 8, 1);
  const std::vector<core::Range> ranges(8, core::Range{-5.0, 5.0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compute_keys(points, ranges, 7));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(m * 8) *
                          state.iterations());
}
BENCHMARK(BM_KeyAssignment)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_HistogramBuild(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto points = random_points(m, 8, 2);
  const std::vector<core::Range> ranges(8, core::Range{-5.0, 5.0});
  const auto keys = core::compute_keys(points, ranges, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::build_histograms(keys, ranges));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(m * 8) *
                          state.iterations());
}
BENCHMARK(BM_HistogramBuild)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_RandomProjection(benchmark::State& state) {
  const auto dims = static_cast<std::size_t>(state.range(0));
  const auto points = random_points(2000, dims, 3);
  const auto a =
      core::make_projection_matrix(dims, core::choose_n_rp(dims), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::project(points, a));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(2000 * dims * a.cols()) * state.iterations());
}
BENCHMARK(BM_RandomProjection)->Arg(20)->Arg(80)->Arg(320)->Arg(1280);

void BM_PartitionHistogram(benchmark::State& state) {
  const auto bins = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  stats::Histogram h(0.0, 1.0, bins);
  for (int i = 0; i < 50000; ++i) {
    h.add(rng.normal(i % 2 ? 0.3 : 0.7, 0.07));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::partition_discrete_opt(h.counts(), 0.04));
  }
}
BENCHMARK(BM_PartitionHistogram)->Arg(32)->Arg(128)->Arg(1024);

void BM_HistogramCalinskiHarabasz(benchmark::State& state) {
  // Cost must not depend on the number of points — only on bins/cells.
  Rng rng(6);
  std::vector<stats::Histogram> hists;
  std::vector<core::DimensionPartition> partitions;
  for (int j = 0; j < 8; ++j) {
    stats::Histogram h(0.0, 1.0, 128);
    for (int i = 0; i < 10000; ++i) {
      h.add(rng.normal(i % 2 ? 0.3 : 0.7, 0.07));
    }
    core::DimensionPartition p;
    p.bins = 128;
    p.cuts = {64};
    hists.push_back(std::move(h));
    partitions.push_back(std::move(p));
  }
  std::vector<core::Cell> cells;
  for (std::uint32_t c = 0; c < 16; ++c) {
    core::Cell cell;
    for (int j = 0; j < 8; ++j) cell.coord.push_back((c >> (j % 4)) & 1);
    cell.density = 100.0 + c;
    cells.push_back(std::move(cell));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::histogram_calinski_harabasz(hists, partitions, cells));
  }
}
BENCHMARK(BM_HistogramCalinskiHarabasz);

void BM_AllreduceHistograms(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  // One KeyBin2 histogram exchange: n_rp=11 dims x 128 bins of doubles.
  const std::size_t len = 11 * 128;
  for (auto _ : state) {
    comm::run_ranks(ranks, [&](comm::Communicator& c) {
      std::vector<double> local(len, static_cast<double>(c.rank()));
      benchmark::DoNotOptimize(c.allreduce(local, comm::ReduceOp::kSum));
    });
  }
}
BENCHMARK(BM_AllreduceHistograms)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_EndToEndFit(benchmark::State& state) {
  const auto dims = static_cast<std::size_t>(state.range(0));
  const auto spec = data::make_paper_mixture(dims, 4, 7);
  const auto d = data::sample(spec, 5000, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::fit(d.points));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(5000) *
                          state.iterations());
}
BENCHMARK(BM_EndToEndFit)->Arg(20)->Arg(320)->Unit(benchmark::kMillisecond);

void BM_EndToEndFitInstrumented(benchmark::State& state) {
  // The same fit with the full observability stack on: comm probe, metrics
  // registry, timeline capture. Compare against BM_EndToEndFit at the same
  // Arg — the budget is <5% overhead enabled; disabled costs one null-probe
  // branch per send/recv and shows up as no measurable delta.
  const auto dims = static_cast<std::size_t>(state.range(0));
  const auto spec = data::make_paper_mixture(dims, 4, 7);
  const auto d = data::sample(spec, 5000, 8);
  const core::Params params;
  for (auto _ : state) {
    runtime::Context ctx(params.seed);
    ctx.enable_timeline();  // implies enable_comm_metrics()
    benchmark::DoNotOptimize(core::fit(ctx, d.points, params));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(5000) *
                          state.iterations());
}
BENCHMARK(BM_EndToEndFitInstrumented)
    ->Arg(20)
    ->Arg(320)
    ->Unit(benchmark::kMillisecond);

}  // namespace

// Hand-rolled main instead of BENCHMARK_MAIN(): after the benchmark run we
// emit BENCH_micro_benchmarks.json like every other harness (the merged
// metrics come from the Reporter's probe fit — google-benchmark owns argv,
// so the bench options stay at their defaults).
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  bench::Options opt;
  opt.name = "micro_benchmarks";
  bench::Reporter::global().write(opt);
  return 0;
}
