
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/dbscan.cpp" "src/baselines/CMakeFiles/kb2_baselines.dir/dbscan.cpp.o" "gcc" "src/baselines/CMakeFiles/kb2_baselines.dir/dbscan.cpp.o.d"
  "/root/repo/src/baselines/disjoint_set.cpp" "src/baselines/CMakeFiles/kb2_baselines.dir/disjoint_set.cpp.o" "gcc" "src/baselines/CMakeFiles/kb2_baselines.dir/disjoint_set.cpp.o.d"
  "/root/repo/src/baselines/kmeans.cpp" "src/baselines/CMakeFiles/kb2_baselines.dir/kmeans.cpp.o" "gcc" "src/baselines/CMakeFiles/kb2_baselines.dir/kmeans.cpp.o.d"
  "/root/repo/src/baselines/parallel_kmeans.cpp" "src/baselines/CMakeFiles/kb2_baselines.dir/parallel_kmeans.cpp.o" "gcc" "src/baselines/CMakeFiles/kb2_baselines.dir/parallel_kmeans.cpp.o.d"
  "/root/repo/src/baselines/xmeans.cpp" "src/baselines/CMakeFiles/kb2_baselines.dir/xmeans.cpp.o" "gcc" "src/baselines/CMakeFiles/kb2_baselines.dir/xmeans.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kb2_common.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/kb2_comm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
