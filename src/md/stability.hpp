// Offline probabilistic validation of trajectory clustering (paper §5.2).
//
// After a trajectory completes, N representative conformations ("labels")
// are drawn by power-law sampling over distance to the mean conformation.
// For each frame i and representative l:
//     Pr(l stable at i) = (1/d_{l,i}) / sum_k (1/d_{k,i})          (Eq. 3)
// A rolling window (100 frames) of these probabilities gives, per label, a
// stability score in [0,1] — the centre of the 70% High Density Region of
// the windowed distribution. A frame is stable iff the top two label scores
// differ by at least w:
//     s_{p,i} - s_{q,i} < w  ->  not stable; otherwise p is stable  (Eq. 4)
// Runs of stable frames with the same top label form the paper's rectangles
// in Figure 4.
#pragma once

#include <cstdint>
#include <vector>

#include "md/trajectory.hpp"

namespace keybin2::md {

/// Distance used for Eq. 3's d_{l,i}.
enum class ConformationDistance {
  /// Angular RMSD in torsion space (fast; the in-situ default).
  kTorsion,
  /// Kabsch-superposed backbone RMSD in 3-D Cartesian space — the metric MD
  /// practitioners usually mean by "RMSD"; conformations are rebuilt from
  /// torsions with the NeRF chain builder (md/builder.hpp).
  kCartesian,
};

struct StabilityParams {
  std::size_t n_representatives = 8;  // N distinct conformations
  std::size_t window = 100;           // rolling window (frames)
  double hdr_mass = 0.70;             // High Density Region mass
  double threshold_w = 0.10;          // Eq. 4 separation threshold
  double power_law_alpha = 1.5;       // representative sampling exponent
  std::uint64_t seed = 42;
  ConformationDistance distance = ConformationDistance::kTorsion;
};

struct StableSegment {
  std::size_t begin = 0;  // first frame
  std::size_t end = 0;    // one past last frame
  int label = -1;         // representative conformation id
};

struct StabilityAnalysis {
  /// Frame-major stability scores, frames x n_representatives.
  std::vector<std::vector<double>> scores;
  /// Top label per frame, -1 while not stable.
  std::vector<int> stable_label;
  /// Maximal runs of stable frames with a common label.
  std::vector<StableSegment> segments;
  /// Frames picked as representative conformations.
  std::vector<std::size_t> representatives;
};

/// Power-law sampling of n distinct representative frames: frames are ranked
/// by distance to the mean conformation and rank r is drawn with probability
/// proportional to (r+1)^-alpha, preferring diverse, far-from-mean poses.
std::vector<std::size_t> sample_representatives(const Trajectory& traj,
                                                std::size_t n, double alpha,
                                                std::uint64_t seed);

/// Full Eq.3/Eq.4 analysis of a completed trajectory.
StabilityAnalysis analyze_stability(const Trajectory& traj,
                                    const StabilityParams& params);

/// Centre of the narrowest interval holding `mass` of the sorted samples
/// (the 70% HDR centre). Exposed for tests.
double hdr_center(std::vector<double> samples, double mass);

}  // namespace keybin2::md
