#include "comm/thread_comm.hpp"

#include "common/error.hpp"

namespace keybin2::comm {

ThreadCommHub::ThreadCommHub(int size) {
  KB2_CHECK_MSG(size >= 1, "hub size must be >= 1, got " << size);
  mailboxes_.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
  traffic_.resize(static_cast<std::size_t>(size));
}

ThreadComm ThreadCommHub::comm(int rank) {
  KB2_CHECK_MSG(rank >= 0 && rank < size(),
                "rank " << rank << " out of hub size " << size());
  return ThreadComm(this, rank);
}

TrafficStats ThreadCommHub::stats(int rank) const {
  std::lock_guard lk(traffic_mu_);
  return traffic_[static_cast<std::size_t>(rank)];
}

void ThreadCommHub::push(int src, int dest, int tag,
                         std::span<const std::byte> data) {
  auto& box = *mailboxes_[static_cast<std::size_t>(dest)];
  {
    std::lock_guard lk(box.mu);
    box.queues[{src, tag}].emplace_back(data.begin(), data.end());
  }
  box.cv.notify_all();
  {
    std::lock_guard lk(traffic_mu_);
    auto& t = traffic_[static_cast<std::size_t>(src)];
    ++t.messages_sent;
    t.bytes_sent += data.size();
  }
}

std::vector<std::byte> ThreadCommHub::pop(int self, int src, int tag) {
  auto& box = *mailboxes_[static_cast<std::size_t>(self)];
  std::unique_lock lk(box.mu);
  const auto key = std::make_pair(src, tag);
  box.cv.wait(lk, [&] {
    if (poisoned_.load()) return true;
    auto it = box.queues.find(key);
    return it != box.queues.end() && !it->second.empty();
  });
  // Drain pending messages even when poisoned; only block-forever is fatal.
  auto it = box.queues.find(key);
  if (it == box.queues.end() || it->second.empty()) {
    lk.unlock();
    check_poisoned();  // the only way the wait can end with an empty queue
    throw Error("ThreadComm::recv woke without a message");
  }
  auto data = std::move(it->second.front());
  it->second.pop_front();
  lk.unlock();
  {
    std::lock_guard tlk(traffic_mu_);
    auto& t = traffic_[static_cast<std::size_t>(self)];
    ++t.messages_received;
    t.bytes_received += data.size();
  }
  return data;
}

void ThreadCommHub::barrier_wait() {
  std::unique_lock lk(barrier_mu_);
  check_poisoned();
  const auto my_generation = barrier_generation_;
  if (++barrier_count_ == size()) {
    barrier_count_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
  } else {
    barrier_cv_.wait(lk, [&] {
      return poisoned_.load() || barrier_generation_ != my_generation;
    });
    if (barrier_generation_ == my_generation) {
      lk.unlock();
      check_poisoned();
    }
  }
}

void ThreadCommHub::poison(const std::string& reason) {
  {
    std::lock_guard lk(poison_mu_);
    if (poisoned_.load()) return;
    poison_reason_ = reason;
  }
  poisoned_.store(true);
  for (auto& box : mailboxes_) {
    std::lock_guard lk(box->mu);
    box->cv.notify_all();
  }
  {
    std::lock_guard lk(barrier_mu_);
    barrier_cv_.notify_all();
  }
}

void ThreadCommHub::check_poisoned() const {
  if (poisoned_.load()) {
    std::lock_guard lk(poison_mu_);
    throw Error("communicator group failed: " + poison_reason_);
  }
}

int ThreadComm::size() const { return hub_->size(); }

void ThreadComm::send(int dest, int tag, std::span<const std::byte> data) {
  KB2_CHECK_MSG(dest >= 0 && dest < size(),
                "send dest " << dest << " out of group size " << size());
  hub_->push(rank_, dest, tag, data);
}

std::vector<std::byte> ThreadComm::recv(int src, int tag) {
  KB2_CHECK_MSG(src >= 0 && src < size(),
                "recv src " << src << " out of group size " << size());
  return hub_->pop(rank_, src, tag);
}

void ThreadComm::barrier() { hub_->barrier_wait(); }

TrafficStats ThreadComm::stats() const { return hub_->stats(rank_); }

}  // namespace keybin2::comm
