#include "stats/kde.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace keybin2::stats {

std::vector<double> kde_smooth(std::span<const double> counts,
                               double bandwidth_bins) {
  KB2_CHECK_MSG(bandwidth_bins > 0.0, "bandwidth must be positive");
  const std::size_t n = counts.size();
  std::vector<double> out(n, 0.0);
  if (n == 0) return out;

  // Kernel support truncated at 4 sigma; precompute the window.
  const auto radius = static_cast<std::size_t>(
      std::ceil(4.0 * bandwidth_bins));
  std::vector<double> kernel(radius + 1);
  const double norm = 1.0 / (bandwidth_bins * std::sqrt(2.0 * std::numbers::pi));
  for (std::size_t r = 0; r <= radius; ++r) {
    const double z = static_cast<double>(r) / bandwidth_bins;
    kernel[r] = norm * std::exp(-0.5 * z * z);
  }

  double in_mass = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    const double m = counts[j];
    if (m == 0.0) continue;
    in_mass += m;
    const std::size_t lo = j >= radius ? j - radius : 0;
    const std::size_t hi = std::min(n - 1, j + radius);
    for (std::size_t i = lo; i <= hi; ++i) {
      const std::size_t r = i > j ? i - j : j - i;
      out[i] += m * kernel[r];
    }
  }

  // Renormalize so smoothing conserves mass (edge truncation loses some).
  double out_mass = 0.0;
  for (double v : out) out_mass += v;
  if (out_mass > 0.0) {
    const double scale = in_mass / out_mass;
    for (auto& v : out) v *= scale;
  }
  return out;
}

double silverman_bandwidth(std::span<const double> counts) {
  double mass = 0.0, mean = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    mass += counts[i];
    mean += static_cast<double>(i) * counts[i];
  }
  if (mass <= 0.0) return 1.0;
  mean /= mass;
  double var = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double d = static_cast<double>(i) - mean;
    var += d * d * counts[i];
  }
  var /= mass;
  const double sigma = std::sqrt(var);
  const double h = 1.06 * sigma * std::pow(mass, -0.2);
  return std::max(0.5, h);
}

}  // namespace keybin2::stats
