#include "md/kabsch.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "md/synthetic.hpp"

namespace keybin2::md {
namespace {

std::vector<Vec3> random_cloud(std::size_t n, Rng& rng) {
  std::vector<Vec3> out(n);
  for (auto& v : out) {
    v = Vec3{rng.normal(0.0, 3.0), rng.normal(0.0, 3.0),
             rng.normal(0.0, 3.0)};
  }
  return out;
}

Vec3 rotate_z(const Vec3& v, double deg) {
  const double rad = deg * std::numbers::pi / 180.0;
  return Vec3{v.x * std::cos(rad) - v.y * std::sin(rad),
              v.x * std::sin(rad) + v.y * std::cos(rad), v.z};
}

TEST(Kabsch, IdenticalCloudsScoreZero) {
  Rng rng(1);
  const auto p = random_cloud(30, rng);
  EXPECT_NEAR(kabsch_rmsd(p, p), 0.0, 1e-9);
}

TEST(Kabsch, TranslationIsRemoved) {
  Rng rng(2);
  const auto p = random_cloud(25, rng);
  auto q = p;
  for (auto& v : q) v = v + Vec3{10.0, -4.0, 7.5};
  EXPECT_NEAR(kabsch_rmsd(p, q), 0.0, 1e-9);
}

TEST(Kabsch, RotationIsRemoved) {
  Rng rng(3);
  const auto p = random_cloud(40, rng);
  for (double deg : {15.0, 90.0, 178.0}) {
    auto q = p;
    for (auto& v : q) v = rotate_z(v, deg);
    EXPECT_NEAR(kabsch_rmsd(p, q), 0.0, 1e-8) << deg << " degrees";
  }
}

TEST(Kabsch, RigidMotionPlusNoiseRecoversNoiseLevel) {
  Rng rng(4);
  const auto p = random_cloud(500, rng);
  auto q = p;
  const double sigma = 0.2;
  for (auto& v : q) {
    v = rotate_z(v, 37.0) + Vec3{1.0, 2.0, 3.0};
    v = v + Vec3{rng.normal(0.0, sigma), rng.normal(0.0, sigma),
                 rng.normal(0.0, sigma)};
  }
  // Expected RMSD ~ sigma * sqrt(3); superposition cannot remove it.
  const double rmsd = kabsch_rmsd(p, q);
  EXPECT_NEAR(rmsd, sigma * std::sqrt(3.0), 0.05);
}

TEST(Kabsch, KnownTwoPointDisplacement) {
  // Two unit points pulled apart symmetrically: optimal superposition
  // aligns them; rmsd reflects the residual stretch.
  std::vector<Vec3> p{Vec3{-1, 0, 0}, Vec3{1, 0, 0}};
  std::vector<Vec3> q{Vec3{-2, 0, 0}, Vec3{2, 0, 0}};
  EXPECT_NEAR(kabsch_rmsd(p, q), 1.0, 1e-9);  // each point off by 1 after fit
}

TEST(Kabsch, SymmetricInArguments) {
  Rng rng(5);
  const auto p = random_cloud(20, rng);
  auto q = random_cloud(20, rng);
  EXPECT_NEAR(kabsch_rmsd(p, q), kabsch_rmsd(q, p), 1e-9);
}

TEST(Kabsch, Validation) {
  std::vector<Vec3> a(3), b(4);
  EXPECT_THROW(kabsch_rmsd(a, b), Error);
  EXPECT_THROW(kabsch_rmsd({}, {}), Error);
}

TEST(BackboneRmsd, SameConformationDifferentPlacementIsZero) {
  const auto st = generate_trajectory({.residues = 20, .frames = 4,
                                       .phases = 1, .transition_frames = 1,
                                       .jitter_deg = 0.0, .seed = 6});
  const auto a = build_backbone(st.trajectory, 0);
  // Same torsions build the same shape: frames of a jitter-free,
  // single-phase trajectory are identical conformations.
  const auto b = build_backbone(st.trajectory, 3);
  EXPECT_NEAR(backbone_rmsd(a, b), 0.0, 1e-6);
}

TEST(BackboneRmsd, DifferentPhasesDiffer) {
  const auto st = generate_trajectory({.residues = 24, .frames = 600,
                                       .phases = 2, .transition_frames = 20,
                                       .jitter_deg = 2.0,
                                       .change_fraction = 0.5, .seed = 7});
  const auto a = build_backbone(st.trajectory, 50);    // phase 0
  const auto b = build_backbone(st.trajectory, 60);    // phase 0
  const auto c = build_backbone(st.trajectory, 550);   // phase 1
  EXPECT_LT(backbone_rmsd(a, b), backbone_rmsd(a, c));
  EXPECT_GT(backbone_rmsd(a, c), 1.0);  // structurally different (angstroms)
}

TEST(BackboneRmsd, MismatchedLengthsThrow) {
  std::vector<BackboneResidue> a(3), b(4);
  EXPECT_THROW(backbone_rmsd(a, b), Error);
}

}  // namespace
}  // namespace keybin2::md
